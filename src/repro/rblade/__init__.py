"""A compact R-tree DataBlade: the "built-in R-tree" analogue.

Informix ships its own R-tree access method (the paper contrasts it with
the GR-tree DataBlade throughout Sections 4-5: its default operator class
has strategies ``Overlap``, ``Equal``, ``Contains``, ``Within`` and
supports ``Union``, ``Size``, ``Inter``).  This subpackage provides the
same thing for the reproduction's server: a 2-D ``Box`` opaque type and
an ``rtree_am`` access method over the R*-tree, so the multi-opclass and
Figure 3 material can be exercised against a second, independent blade.
"""

from repro.rblade.blade import RTreeDataBlade, register_rtree_blade

__all__ = ["RTreeDataBlade", "register_rtree_blade"]
