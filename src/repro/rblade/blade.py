"""The R-tree DataBlade: ``Box`` opaque type + ``rtree_am``.

Mirrors the structure of the GR-tree blade at smaller scale: purpose
functions ``rt_*`` over an R*-tree persisted in one smart blob, a default
operator class with the strategies the paper lists for Informix's R-tree
(``Overlap``, ``Equal``, ``Contains``, ``Within``) and supports
(``Union``, ``Size``, ``Inter``).  Unlike the GR-tree blade, the strategy
functions here are dispatched *dynamically* through the UDR registry --
the non-hard-coded design alternative of Section 5.2 -- so the Figure 7
benchmark can compare both dispatch regimes.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.rtree.geometry import Rect
from repro.rtree.node import NodeStore
from repro.rtree.rstar import RStarTree
from repro.server.access_method import (
    CompoundQualification,
    IndexDescriptor,
    BooleanOperator,
    Qualification,
    RowReference,
    ScanDescriptor,
    SimpleQualification,
)
from repro.server.datatypes import OpaqueType
from repro.server.errors import AccessMethodError, DataTypeError
from repro.datablade.blob import BladeBlob
from repro.storage.buffer import BufferPool
from repro.storage.sbspace import LargeObjectHandle, OpenMode

BOX_TYPE_NAME = "Box"

_META = struct.Struct("<4sqqq")
_META_MAGIC = b"RTB1"


def box_input(text: str) -> Rect:
    """Parse ``"(x1, y1, x2, y2)"`` into a rectangle."""
    cleaned = text.strip().strip("()")
    parts = [p.strip() for p in cleaned.split(",")]
    if len(parts) != 4:
        raise DataTypeError(f"a Box literal needs four coordinates: {text!r}")
    try:
        x1, y1, x2, y2 = (float(p) for p in parts)
    except ValueError:
        raise DataTypeError(f"invalid Box literal: {text!r}") from None
    if x1 > x2 or y1 > y2:
        raise DataTypeError(f"Box corners out of order: {text!r}")
    return Rect((x1, y1), (x2, y2))


def box_output(value: Rect) -> str:
    return f"({value.lo[0]:g}, {value.lo[1]:g}, {value.hi[0]:g}, {value.hi[1]:g})"


def make_box_type() -> OpaqueType:
    def validate(value):
        if not isinstance(value, Rect) or value.ndim != 2:
            raise DataTypeError(f"Box expected, got {value!r}")
        return value

    return OpaqueType(
        BOX_TYPE_NAME, input_fn=box_input, output_fn=box_output, validate_fn=validate
    )


#: Strategy semantics: leaf test + internal pruning test, as callables on
#: (entry_rect, query_rect).
_STRATEGIES: Dict[str, Tuple[Callable, Callable]] = {
    "overlap": (Rect.intersects, Rect.intersects),
    "equal": (lambda a, b: a == b, Rect.contains),
    "contains": (Rect.contains, Rect.contains),
    "within": (lambda a, b: b.contains(a), Rect.intersects),
}

#: Commuted forms for f(constant, column).
_COMMUTED = {
    "overlap": "overlap",
    "equal": "equal",
    "contains": "within",
    "within": "contains",
}


class RTreeDataBlade:
    """The R-tree access method over 2-D boxes."""

    LIBRARY_PATH = "usr/functions/rtree.bld"
    AM_NAME = "rtree_am"
    OPCLASS_NAME = "rtree_ops"
    METADATA_TABLE = "rtree_indexdata"

    def __init__(self, server, buffer_capacity: int = 64) -> None:
        self.server = server
        self.buffer_capacity = buffer_capacity
        #: Dynamic dispatch: strategy tests resolved through the UDR
        #: registry per entry (the extensible design of Section 5.2).
        self.dynamic_dispatch = False

    # -- purpose functions -------------------------------------------------

    def rt_create(self, td: IndexDescriptor) -> int:
        if tuple(t.upper() for t in td.column_types) != (BOX_TYPE_NAME.upper(),):
            raise AccessMethodError(
                f"{self.AM_NAME} indexes exactly one {BOX_TYPE_NAME} column"
            )
        space = self.server.get_sbspace(td.space_name)
        blob = BladeBlob.create(space)
        meta_table = self.server.catalog.get_table(self.METADATA_TABLE)
        meta_table.insert_row(
            {"indexname": td.index_name, "blobhandle": blob.handle.value}
        )
        blob.open(td.session, OpenMode.WRITE)
        pool = BufferPool(blob.page_store(), capacity=self.buffer_capacity)
        meta_page = pool.allocate()
        store = NodeStore(pool, ndim=2)
        tree = RStarTree(store)
        td.user_data.update(
            {"tree": tree, "blob": blob, "pool": pool, "meta_page": meta_page}
        )
        return 0

    def rt_drop(self, td: IndexDescriptor) -> int:
        if "tree" not in td.user_data:
            self.rt_open(td)
        td.user_data["blob"].drop()
        td.user_data.clear()
        meta_table = self.server.catalog.get_table(self.METADATA_TABLE)
        for rowid, row in meta_table.scan():
            if row["indexname"] == td.index_name:
                meta_table.delete_row(rowid)
                break
        return 0

    def rt_open(self, td: IndexDescriptor) -> int:
        if "tree" in td.user_data:
            return 0
        meta_table = self.server.catalog.get_table(self.METADATA_TABLE)
        handle_text = None
        for _, row in meta_table.scan():
            if row["indexname"] == td.index_name:
                handle_text = row["blobhandle"]
                break
        if handle_text is None:
            raise AccessMethodError(f"no metadata for index {td.index_name}")
        space = self.server.get_sbspace(td.space_name)
        blob = BladeBlob(space, LargeObjectHandle(handle_text))
        blob.open(td.session, OpenMode.READ)
        pool = BufferPool(blob.page_store(), capacity=self.buffer_capacity)
        data = pool.read(0)
        magic, root_id, height, size = _META.unpack_from(data, 0)
        if magic != _META_MAGIC:
            raise AccessMethodError(f"index {td.index_name} storage is corrupt")
        store = NodeStore(pool, ndim=2)
        tree = RStarTree(store, root_id=root_id, height=height, size=size)
        td.user_data.update(
            {"tree": tree, "blob": blob, "pool": pool, "meta_page": 0}
        )
        return 0

    def rt_close(self, td: IndexDescriptor) -> int:
        tree: RStarTree = td.user_data["tree"]
        pool: BufferPool = td.user_data["pool"]
        blob: BladeBlob = td.user_data["blob"]
        if blob._open_mode is OpenMode.WRITE:
            pool.write(
                td.user_data["meta_page"],
                _META.pack(_META_MAGIC, tree.root_id, tree.height, tree.size),
            )
        pool.flush()
        blob.close()
        td.user_data.clear()
        return 0

    # -- scanning -----------------------------------------------------------

    def rt_beginscan(self, sd: ScanDescriptor) -> int:
        if sd.qualification is None:
            raise AccessMethodError("rt_beginscan needs a qualification")
        tree: RStarTree = sd.index.user_data["tree"]
        branches = self._to_dnf(sd.qualification)
        sd.user_data["scan"] = _RScan(self, tree, branches)
        return 0

    def rt_rescan(self, sd: ScanDescriptor) -> int:
        sd.user_data["scan"].reset()
        return 0

    def rt_getnext(self, sd: ScanDescriptor) -> Optional[RowReference]:
        return sd.user_data["scan"].next()

    def rt_endscan(self, sd: ScanDescriptor) -> int:
        sd.user_data.pop("scan", None)
        return 0

    # -- updates --------------------------------------------------------------

    def rt_insert(self, td: IndexDescriptor, newrow, newrowid: int) -> int:
        td.user_data["blob"].ensure_writable()
        td.user_data["tree"].insert(newrow[0], newrowid)
        return 0

    def rt_delete(self, td: IndexDescriptor, oldrow, oldrowid: int) -> int:
        td.user_data["blob"].ensure_writable()
        if not td.user_data["tree"].delete(oldrow[0], oldrowid):
            raise AccessMethodError(
                f"index {td.index_name} has no entry for rowid {oldrowid}"
            )
        return 0

    def rt_update(self, td, oldrow, oldrowid: int, newrow, newrowid: int) -> int:
        self.rt_delete(td, oldrow, oldrowid)
        self.rt_insert(td, newrow, newrowid)
        return 0

    def rt_scancost(self, sd: ScanDescriptor) -> float:
        # A crude estimate: tree height plus a constant per DNF branch.
        tree = sd.index.user_data.get("tree")
        height = tree.height if tree is not None else 2
        return float(height + len(self._to_dnf(sd.qualification)))

    def rt_stats(self, td: IndexDescriptor) -> Dict[str, float]:
        return td.user_data["tree"].stats()

    def rt_check(self, td: IndexDescriptor) -> int:
        try:
            td.user_data["tree"].check()
        except AssertionError as exc:
            raise AccessMethodError(f"index {td.index_name} corrupt: {exc}") from exc
        return 0

    # -- qualification handling -------------------------------------------

    def _to_dnf(self, qual: Qualification) -> List[List[Tuple[str, Rect]]]:
        if isinstance(qual, SimpleQualification):
            name = qual.function.lower()
            if name not in _STRATEGIES:
                raise AccessMethodError(
                    f"{qual.function} is not an R-tree strategy function"
                )
            if not isinstance(qual.constant, Rect):
                raise AccessMethodError(
                    f"{qual.function} constant must be a Box"
                )
            if qual.constant_first:
                name = _COMMUTED[name]
            return [[(name, qual.constant)]]
        assert isinstance(qual, CompoundQualification)
        child_dnfs = [self._to_dnf(c) for c in qual.children]
        if qual.operator is BooleanOperator.OR:
            return [branch for dnf in child_dnfs for branch in dnf]
        result: List[List[Tuple[str, Rect]]] = [[]]
        for dnf in child_dnfs:
            result = [prefix + branch for prefix in result for branch in dnf]
        return result

    def leaf_test(self, strategy: str, entry_rect: Rect, query: Rect) -> bool:
        """Leaf-level test; dynamically dispatched through the UDR
        registry when ``dynamic_dispatch`` is on (Section 5.2)."""
        if self.dynamic_dispatch:
            routine = self.server.catalog.routines.resolve(
                _UDR_NAMES[strategy], (BOX_TYPE_NAME, BOX_TYPE_NAME)
            )
            self.server.catalog.routines.invocations += 1
            return bool(routine(entry_rect, query))
        return _STRATEGIES[strategy][0](entry_rect, query)

    # ------------------------------------------------------------------

    def exports(self) -> Dict[str, Any]:
        strategies = {
            "rt_overlap_udr": lambda a, b: a.intersects(b),
            "rt_equal_udr": lambda a, b: a == b,
            "rt_contains_udr": lambda a, b: a.contains(b),
            "rt_within_udr": lambda a, b: b.contains(a),
            "rt_union_udr": lambda a, b: a.union(b),
            "rt_size_udr": lambda a: a.area(),
            "rt_inter_udr": lambda a, b: a.intersection(b),
        }
        purpose = {
            "rt_create": self.rt_create,
            "rt_drop": self.rt_drop,
            "rt_open": self.rt_open,
            "rt_close": self.rt_close,
            "rt_beginscan": self.rt_beginscan,
            "rt_endscan": self.rt_endscan,
            "rt_rescan": self.rt_rescan,
            "rt_getnext": self.rt_getnext,
            "rt_insert": self.rt_insert,
            "rt_delete": self.rt_delete,
            "rt_update": self.rt_update,
            "rt_scancost": self.rt_scancost,
            "rt_stats": self.rt_stats,
            "rt_check": self.rt_check,
        }
        return {**strategies, **purpose}


_UDR_NAMES = {
    "overlap": "Overlap",
    "equal": "Equal",
    "contains": "Contains",
    "within": "Within",
}


class _RScan:
    """DNF scan over the R*-tree with cross-branch de-duplication."""

    def __init__(self, blade, tree, branches) -> None:
        self.blade = blade
        self.tree = tree
        self.branches = branches
        self.reset()

    def reset(self) -> None:
        self._results: List[Tuple[int, int, Rect]] = []
        self._rects: Dict[Tuple[int, int], Rect] = {}
        self._pos = 0
        seen = set()
        for branch in self.branches:
            strategy, query = branch[0]
            for rowid, fragid in self._probe(strategy, query):
                if (rowid, fragid) in seen:
                    continue
                rect = self._rect_of(rowid, fragid, query, strategy)
                if rect is None:
                    continue
                if all(
                    self.blade.leaf_test(s, rect, q) for s, q in branch[1:]
                ):
                    seen.add((rowid, fragid))
                    self._results.append((rowid, fragid, rect))

    def _probe(self, strategy: str, query: Rect):
        """Index probe with the strategy's leaf test applied."""
        hits = []
        stack = [self.tree.root_id]
        while stack:
            node = self.tree.store.read(stack.pop())
            for entry in node.entries:
                if node.leaf:
                    if self.blade.leaf_test(strategy, entry.rect, query):
                        hits.append((entry.rowid, entry.fragid))
                        self._rects[(entry.rowid, entry.fragid)] = entry.rect
                else:
                    if _STRATEGIES[strategy][1](entry.rect, query):
                        stack.append(entry.child)
        return hits

    def _rect_of(self, rowid, fragid, query, strategy):
        return self._rects.get((rowid, fragid))

    def next(self) -> Optional[RowReference]:
        if self._pos >= len(self._results):
            return None
        rowid, fragid, rect = self._results[self._pos]
        self._pos += 1
        return RowReference(rowid=rowid, fragid=fragid, row=(rect,))


def register_rtree_blade(server, buffer_capacity: int = 64) -> RTreeDataBlade:
    """Install the R-tree DataBlade into *server*."""
    blade = RTreeDataBlade(server, buffer_capacity=buffer_capacity)
    server.types.register(make_box_type())
    server.library.register_module(RTreeDataBlade.LIBRARY_PATH, blade.exports())

    statements: List[str] = []
    for slot, symbol in (
        ("am_create", "rt_create"),
        ("am_drop", "rt_drop"),
        ("am_open", "rt_open"),
        ("am_close", "rt_close"),
        ("am_beginscan", "rt_beginscan"),
        ("am_endscan", "rt_endscan"),
        ("am_rescan", "rt_rescan"),
        ("am_getnext", "rt_getnext"),
        ("am_insert", "rt_insert"),
        ("am_delete", "rt_delete"),
        ("am_update", "rt_update"),
        ("am_scancost", "rt_scancost"),
        ("am_stats", "rt_stats"),
        ("am_check", "rt_check"),
    ):
        statements.append(
            f"CREATE FUNCTION {symbol}(pointer) RETURNING int "
            f"EXTERNAL NAME '{blade.LIBRARY_PATH}({symbol})' LANGUAGE c"
        )
    for name, symbol in (
        ("Overlap", "rt_overlap_udr"),
        ("Equal", "rt_equal_udr"),
        ("Contains", "rt_contains_udr"),
        ("Within", "rt_within_udr"),
    ):
        statements.append(
            f"CREATE FUNCTION {name}({BOX_TYPE_NAME}, {BOX_TYPE_NAME}) "
            f"RETURNING boolean "
            f"EXTERNAL NAME '{blade.LIBRARY_PATH}({symbol})' LANGUAGE c"
        )
    statements.append(
        f"CREATE FUNCTION RT_Union({BOX_TYPE_NAME}, {BOX_TYPE_NAME}) "
        f"RETURNING pointer "
        f"EXTERNAL NAME '{blade.LIBRARY_PATH}(rt_union_udr)' LANGUAGE c"
    )
    statements.append(
        f"CREATE FUNCTION RT_Size({BOX_TYPE_NAME}) RETURNING pointer "
        f"EXTERNAL NAME '{blade.LIBRARY_PATH}(rt_size_udr)' LANGUAGE c"
    )
    statements.append(
        f"CREATE FUNCTION RT_Inter({BOX_TYPE_NAME}, {BOX_TYPE_NAME}) "
        f"RETURNING pointer "
        f"EXTERNAL NAME '{blade.LIBRARY_PATH}(rt_inter_udr)' LANGUAGE c"
    )
    slots = ", ".join(
        f"{slot} = {symbol}"
        for slot, symbol in (
            ("am_create", "rt_create"),
            ("am_drop", "rt_drop"),
            ("am_open", "rt_open"),
            ("am_close", "rt_close"),
            ("am_beginscan", "rt_beginscan"),
            ("am_endscan", "rt_endscan"),
            ("am_rescan", "rt_rescan"),
            ("am_getnext", "rt_getnext"),
            ("am_insert", "rt_insert"),
            ("am_delete", "rt_delete"),
            ("am_update", "rt_update"),
            ("am_scancost", "rt_scancost"),
            ("am_stats", "rt_stats"),
            ("am_check", "rt_check"),
        )
    )
    statements.append(
        f'CREATE SECONDARY ACCESS_METHOD {blade.AM_NAME} ({slots}, am_sptype = "S")'
    )
    statements.append(
        f"CREATE DEFAULT OPCLASS {blade.OPCLASS_NAME} FOR {blade.AM_NAME} "
        f"STRATEGIES(Overlap, Equal, Contains, Within) "
        f"SUPPORT(RT_Union, RT_Size, RT_Inter)"
    )
    statements.append(
        f"CREATE TABLE {blade.METADATA_TABLE} "
        f"(indexname LVARCHAR, blobhandle LVARCHAR)"
    )
    with server.provisioning():
        server.run_script(";\n".join(statements))
    return blade
