"""DataBlade-API-style memory management (Sections 5.4 and 6.2).

DataBlade code may not use globals or ``malloc``: memory is allocated from
the server with a *duration* (``PER_FUNCTION``, ``PER_STATEMENT``, ...)
and is freed automatically when the duration ends.  *Named memory*
(server shared memory addressed by a string key) is how the GR-tree
DataBlade keeps the transaction's current-time value across purpose-
function calls: the name embeds the session id and a transaction-end
callback frees it (Section 5.4).
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Any, Dict, List


class Duration(enum.Enum):
    """Allocation lifetimes, shortest to longest."""

    PER_FUNCTION = "function"
    PER_STATEMENT = "statement"
    PER_TRANSACTION = "transaction"
    PER_SESSION = "session"
    PER_SYSTEM = "system"


class NamedMemoryError(KeyError):
    """The requested named-memory block does not exist."""


class MemoryManager:
    """Tracks duration-scoped allocations and named shared memory."""

    def __init__(self) -> None:
        self._by_duration: Dict[Duration, List[Any]] = defaultdict(list)
        self._named: Dict[str, Any] = {}
        #: Counters surfaced to tests (leaks manifest as nonzero residue).
        self.allocations = 0
        self.frees = 0

    # ------------------------------------------------------------------
    # Duration-scoped allocation (mi_dalloc)
    # ------------------------------------------------------------------

    def allocate(self, duration: Duration, value: Any = None) -> Any:
        """Register *value* as allocated for *duration*; returns it."""
        holder = {} if value is None else value
        self._by_duration[duration].append(holder)
        self.allocations += 1
        return holder

    def end_duration(self, duration: Duration) -> int:
        """Free everything at *duration* and every shorter duration."""
        order = list(Duration)
        freed = 0
        for d in order[: order.index(duration) + 1]:
            freed += len(self._by_duration[d])
            self._by_duration[d].clear()
        self.frees += freed
        return freed

    def live_count(self, duration: Duration) -> int:
        return len(self._by_duration[duration])

    # ------------------------------------------------------------------
    # Named memory (mi_named_alloc / mi_named_get / mi_named_free)
    # ------------------------------------------------------------------

    def named_allocate(self, name: str, value: Any) -> Any:
        """Allocate named server memory; fails if the name exists."""
        if name in self._named:
            raise NamedMemoryError(f"named memory {name!r} already exists")
        self._named[name] = value
        self.allocations += 1
        return value

    def named_get(self, name: str) -> Any:
        try:
            return self._named[name]
        except KeyError:
            raise NamedMemoryError(f"no named memory {name!r}") from None

    def named_exists(self, name: str) -> bool:
        return name in self._named

    def named_items(self) -> List[Any]:
        """Snapshot of the live named-memory blocks, for inspection."""
        return list(self._named.items())

    def named_free(self, name: str) -> None:
        if self._named.pop(name, _MISSING) is _MISSING:
            raise NamedMemoryError(f"no named memory {name!r}")
        self.frees += 1


_MISSING = object()
