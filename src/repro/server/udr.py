"""User-defined routines (UDRs): CREATE FUNCTION and dynamic resolution.

Routines are registered from a *shared library* -- in the reproduction, a
:class:`SharedLibraryRegistry` mapping ``path(symbol)`` external names to
Python callables, standing in for ``grtree.bld`` -- and then resolved at
call time by name and argument-type signature (overloading).  The
registry also records Informix's two inter-routine association hints,
*negator* and *commutator*, which Section 5.2 contrasts with the richer
implication hints ("non-overlap implies non-equality") the optimizer
cannot be told about.

Resolution counts are kept: the "cost of extensibility is the overhead of
dynamic resolution and execution of strategy and support functions"
(Section 4), and the Figure 7 benchmark measures exactly this counter.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.server.errors import UdrError

_EXTERNAL_NAME = re.compile(r"^(?P<path>[^()]+)\((?P<symbol>[A-Za-z_][\w]*)\)$")


class SharedLibraryRegistry:
    """Maps external names like ``usr/functions/grtree.bld(grt_open)`` to
    the callables a DataBlade module exports."""

    def __init__(self) -> None:
        self._symbols: Dict[Tuple[str, str], Callable] = {}

    def register(self, path: str, symbol: str, fn: Callable) -> None:
        self._symbols[(path, symbol)] = fn

    def register_module(self, path: str, exports: Dict[str, Callable]) -> None:
        for symbol, fn in exports.items():
            self.register(path, symbol, fn)

    def resolve_external(self, external_name: str) -> Callable:
        match = _EXTERNAL_NAME.match(external_name.strip().strip("'\""))
        if not match:
            raise UdrError(
                f"malformed EXTERNAL NAME {external_name!r}; expected path(symbol)"
            )
        key = (match.group("path").strip(), match.group("symbol"))
        try:
            return self._symbols[key]
        except KeyError:
            raise UdrError(
                f"shared library has no symbol {key[1]!r} at {key[0]!r}"
            ) from None


@dataclass
class Routine:
    """A registered UDR: one overload of a function name."""

    name: str
    arg_types: Tuple[str, ...]
    return_type: str
    fn: Callable
    external_name: str = ""
    language: str = "c"
    negator: Optional[str] = None
    commutator: Optional[str] = None

    @property
    def signature(self) -> str:
        return f"{self.name}({', '.join(self.arg_types)})"

    def __call__(self, *args: Any) -> Any:
        return self.fn(*args)


class RoutineRegistry:
    """The SYSPROCEDURES slice of the catalog: registration + resolution."""

    def __init__(self) -> None:
        self._routines: Dict[str, List[Routine]] = {}
        #: Dynamic resolutions performed (the extensibility overhead).
        self.resolutions = 0
        #: Total UDR invocations through the registry.
        self.invocations = 0

    # ------------------------------------------------------------------

    def register(self, routine: Routine) -> Routine:
        overloads = self._routines.setdefault(routine.name.lower(), [])
        for existing in overloads:
            if existing.arg_types == routine.arg_types:
                raise UdrError(
                    f"routine {routine.signature} is already registered"
                )
        overloads.append(routine)
        return routine

    def unregister(self, name: str, arg_types: Optional[Sequence[str]] = None) -> int:
        overloads = self._routines.get(name.lower(), [])
        if arg_types is None:
            removed = len(overloads)
            self._routines.pop(name.lower(), None)
            return removed
        kept = [r for r in overloads if r.arg_types != tuple(arg_types)]
        removed = len(overloads) - len(kept)
        if kept:
            self._routines[name.lower()] = kept
        else:
            self._routines.pop(name.lower(), None)
        return removed

    # ------------------------------------------------------------------

    def exists(self, name: str) -> bool:
        return name.lower() in self._routines

    def overloads(self, name: str) -> List[Routine]:
        return list(self._routines.get(name.lower(), []))

    def resolve(self, name: str, arg_types: Sequence[str]) -> Routine:
        """Find the overload matching the argument-type signature."""
        self.resolutions += 1
        overloads = self._routines.get(name.lower())
        if not overloads:
            raise UdrError(f"no routine named {name}")
        wanted = tuple(t.upper() for t in arg_types)
        for routine in overloads:
            if tuple(t.upper() for t in routine.arg_types) == wanted:
                return routine
        if len(overloads) == 1 and len(overloads[0].arg_types) == len(wanted):
            # Informix coerces when a single candidate fits by arity.
            return overloads[0]
        raise UdrError(
            f"no overload of {name} accepts ({', '.join(wanted)})"
        )

    def resolve_any(self, name: str) -> Routine:
        """Resolve by name alone when exactly one overload exists."""
        self.resolutions += 1
        overloads = self._routines.get(name.lower())
        if not overloads:
            raise UdrError(f"no routine named {name}")
        if len(overloads) > 1:
            raise UdrError(f"routine {name} is ambiguous without a signature")
        return overloads[0]

    def invoke(self, name: str, args: Sequence[Any], arg_types: Sequence[str]) -> Any:
        routine = self.resolve(name, arg_types)
        self.invocations += 1
        return routine(*args)

    # ------------------------------------------------------------------

    def set_negator(self, name: str, negator: str) -> None:
        for routine in self._require(name):
            routine.negator = negator

    def set_commutator(self, name: str, commutator: str) -> None:
        for routine in self._require(name):
            routine.commutator = commutator

    def _require(self, name: str) -> List[Routine]:
        overloads = self._routines.get(name.lower())
        if not overloads:
            raise UdrError(f"no routine named {name}")
        return overloads

    def names(self) -> List[str]:
        return sorted(self._routines)
