"""Secondary access methods, purpose functions, and descriptors.

Step 2/3 of Section 4: a developer defines a *secondary access method* by
registering a set of *purpose functions* (Table 2) with ``CREATE
SECONDARY ACCESS_METHOD``.  Only ``am_getnext`` is mandatory.  The server
invokes the purpose functions with *descriptors* -- structures the server
fills in and the DataBlade reads (and extends with user data):

* the **index descriptor** (``td``) describes one virtual index;
* the **scan descriptor** (``sd``) carries the index descriptor plus the
  **qualification descriptor** (``qd``), the relevant part of the WHERE
  clause, restricted to single-column predicates (Section 5.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.server.errors import AccessMethodError

#: The purpose-function slots of the paper's Table 2, in its order.
PURPOSE_SLOTS = (
    "am_create",
    "am_drop",
    "am_open",
    "am_close",
    "am_beginscan",
    "am_endscan",
    "am_rescan",
    "am_getnext",
    "am_insert",
    "am_delete",
    "am_update",
    "am_scancost",
    "am_stats",
    "am_check",
)

#: Task descriptions, Table 2 verbatim (used by its benchmark).
PURPOSE_TASKS = {
    "Creating and dropping an index.": ("am_create", "am_drop"),
    "Opening and closing an index.": ("am_open", "am_close"),
    "Scanning an index for records that meet the qualifications of a query.": (
        "am_beginscan",
        "am_endscan",
        "am_rescan",
        "am_getnext",
    ),
    "Adding, deleting, and updating records in an index.": (
        "am_insert",
        "am_delete",
        "am_update",
    ),
    "Determining the cost for a scan of an index.": ("am_scancost",),
    "Updating statistics.": ("am_stats",),
    "Checking an index consistency.": ("am_check",),
}


class SpaceType(enum.Enum):
    """Where virtual indices of an access method live (``am_sptype``)."""

    SBSPACE = "S"
    EXTERNAL_FILE = "F"


@dataclass
class SecondaryAccessMethod:
    """A registered access method: purpose-function names + properties."""

    name: str
    purpose_functions: Dict[str, str]  # slot -> registered UDR name
    sptype: SpaceType = SpaceType.SBSPACE
    default_opclass: Optional[str] = None
    #: Resolved purpose routines, keyed by slot.  Purpose-function names
    #: never overload, so the first resolution holds until the routine
    #: registry changes (CREATE/DROP FUNCTION clears this).
    routine_cache: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = set(self.purpose_functions) - set(PURPOSE_SLOTS)
        if unknown:
            raise AccessMethodError(
                f"unknown purpose-function slots: {sorted(unknown)}"
            )
        if "am_getnext" not in self.purpose_functions:
            raise AccessMethodError(
                "am_getnext is mandatory for a secondary access method"
            )

    def has(self, slot: str) -> bool:
        return slot in self.purpose_functions


# ----------------------------------------------------------------------
# Qualification descriptors
# ----------------------------------------------------------------------


@dataclass
class SimpleQualification:
    """One strategy-function predicate: ``f(column, constant)``,
    ``f(constant, column)``, or ``f(column)``."""

    function: str
    column: str
    constant: Any = None
    constant_first: bool = False
    has_constant: bool = True

    def arguments(self, column_value: Any) -> Tuple[Any, ...]:
        """Argument tuple for invoking the strategy UDR on a row value."""
        if not self.has_constant:
            return (column_value,)
        if self.constant_first:
            return (self.constant, column_value)
        return (column_value, self.constant)


class BooleanOperator(enum.Enum):
    AND = "and"
    OR = "or"


@dataclass
class CompoundQualification:
    """An AND/OR combination of qualifications (Section 6.3: the blade
    breaks these into simple ones)."""

    operator: BooleanOperator
    children: List["Qualification"]


Qualification = Union[SimpleQualification, CompoundQualification]


def qualification_functions(qual: Qualification) -> List[str]:
    """All strategy-function names appearing in a qualification."""
    if isinstance(qual, SimpleQualification):
        return [qual.function]
    names: List[str] = []
    for child in qual.children:
        names.extend(qualification_functions(child))
    return names


def qualification_column(qual: Qualification) -> Optional[str]:
    """The single column a qualification refers to, or ``None`` if mixed."""
    if isinstance(qual, SimpleQualification):
        return qual.column
    columns = {qualification_column(child) for child in qual.children}
    return columns.pop() if len(columns) == 1 else None


# ----------------------------------------------------------------------
# Index and scan descriptors
# ----------------------------------------------------------------------


@dataclass
class IndexDescriptor:
    """The ``td`` structure passed to every purpose function."""

    index_name: str
    table_name: str
    columns: Tuple[str, ...]
    column_types: Tuple[str, ...]
    am_name: str
    opclass_names: Tuple[str, ...]
    space_name: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    #: Slot for DataBlade-managed state (the Tree object, blob handles...).
    user_data: Dict[str, Any] = field(default_factory=dict)
    #: Filled by the server with session/server context before each call.
    server: Any = None
    session: Any = None

    @property
    def fragments(self) -> Tuple[int, ...]:
        return (0,)  # the reproduction keeps tables unfragmented


@dataclass
class ScanDescriptor:
    """The ``sd`` structure for a scan: index + qualification."""

    index: IndexDescriptor
    qualification: Optional[Qualification]
    user_data: Dict[str, Any] = field(default_factory=dict)


@dataclass
class RowReference:
    """What ``am_getnext`` returns: a rowid/fragid plus the indexed
    fields, so covering queries can skip the base table."""

    rowid: int
    fragid: int = 0
    row: Optional[Tuple[Any, ...]] = None


class AccessMethodRegistry:
    """The SYSAMS slice of the catalog."""

    def __init__(self) -> None:
        self._methods: Dict[str, SecondaryAccessMethod] = {}

    def register(self, am: SecondaryAccessMethod) -> SecondaryAccessMethod:
        key = am.name.lower()
        if key in self._methods:
            raise AccessMethodError(f"access method {am.name} already exists")
        self._methods[key] = am
        return am

    def unregister(self, name: str) -> None:
        if self._methods.pop(name.lower(), None) is None:
            raise AccessMethodError(f"no access method {name}")

    def get(self, name: str) -> SecondaryAccessMethod:
        try:
            return self._methods[name.lower()]
        except KeyError:
            raise AccessMethodError(f"no access method {name}") from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._methods

    def names(self) -> List[str]:
        return sorted(self._methods)

    def clear_resolution_caches(self) -> None:
        """Drop every cached purpose-routine resolution (the routine
        registry changed underneath the caches)."""
        for am in self._methods.values():
            am.routine_cache.clear()
