"""A small SQL front end covering the paper's statement set.

DDL: ``CREATE TABLE``, ``CREATE FUNCTION`` (with ``EXTERNAL NAME`` and
``LANGUAGE C``), ``CREATE SECONDARY ACCESS_METHOD``, ``CREATE OPCLASS``
(with ``STRATEGIES``/``SUPPORT``), ``CREATE INDEX ... USING am IN space``,
and the matching ``DROP`` statements.  DML: ``INSERT``, ``SELECT``,
``DELETE``, ``UPDATE`` with WHERE clauses combining strategy-function
predicates and comparisons with AND/OR/NOT.  Transactions: ``BEGIN WORK``,
``COMMIT WORK``, ``ROLLBACK WORK``, ``SET ISOLATION TO ...``.  Utility:
``CHECK INDEX`` and ``UPDATE STATISTICS FOR INDEX`` map onto ``am_check``
and ``am_stats``.  Observability: ``SHOW STATS [JSON]`` and ``SHOW SPANS
[JSON] [WHERE CONNECTION = n] [LIMIT n]`` dump the metrics registry and
span trees, ``SHOW TRACE <id> [JSON]`` retrieves one distributed trace,
``SHOW WORKLOAD [JSON] [TOP n BY calls|total_time|mean_time]`` renders
the fingerprint workload model, ``SHOW EVENTS [JSON] [LIMIT n]`` dumps
the structured event log, ``SET SLOW QUERY THRESHOLD <ms>|OFF`` arms the
slow-query log, and ``SET TRACE CLASS <class> LEVEL <n>`` is the SQL
face of the Section 6.4 trace facility.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.server.errors import SqlError

# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------


@dataclass
class ColumnRef:
    name: str


@dataclass
class Literal:
    text: str                 # raw text (string literals keep their body)
    is_string: bool           # True when quoted
    number: Optional[float] = None

    @property
    def python_value(self) -> Any:
        if self.is_string:
            return self.text
        if self.number is None:
            return self.text
        if self.number == int(self.number):
            return int(self.number)
        return self.number


@dataclass
class FunctionCall:
    name: str
    args: List[Union[ColumnRef, Literal]]


@dataclass
class Comparison:
    op: str  # '=', '<>', '<', '<=', '>', '>='
    left: Union[ColumnRef, Literal]
    right: Union[ColumnRef, Literal]


@dataclass
class And:
    children: List["Expr"]


@dataclass
class Or:
    children: List["Expr"]


@dataclass
class Not:
    child: "Expr"


Expr = Union[FunctionCall, Comparison, And, Or, Not]


@dataclass
class CreateTable:
    name: str
    columns: List[Tuple[str, str]]


@dataclass
class DropTable:
    name: str


@dataclass
class CreateFunction:
    name: str
    arg_types: Tuple[str, ...]
    return_type: str
    external_name: str
    language: str
    #: Informix's inter-routine association hints (Section 5.2): the
    #: only relationships the optimizer can be told about.
    negator: Optional[str] = None
    commutator: Optional[str] = None


@dataclass
class DropFunction:
    name: str


@dataclass
class CreateAccessMethod:
    name: str
    slots: Dict[str, str]
    sptype: str


@dataclass
class DropAccessMethod:
    name: str


@dataclass
class CreateOpclass:
    name: str
    am_name: str
    strategies: Tuple[str, ...]
    supports: Tuple[str, ...]
    default: bool = False


@dataclass
class DropOpclass:
    name: str


@dataclass
class CreateIndex:
    name: str
    table: str
    columns: List[Tuple[str, Optional[str]]]  # (column, opclass or None)
    am_name: Optional[str]
    space: Optional[str]
    #: ``WITH (key = value, ...)`` tuning parameters, e.g. the per-index
    #: ``buffer_capacity`` and ``node_cache`` sizes.
    parameters: Dict[str, Any] = field(default_factory=dict)


@dataclass
class DropIndex:
    name: str


@dataclass
class Insert:
    table: str
    columns: Optional[List[str]]
    values: List[Literal]


@dataclass
class Select:
    columns: List[str]  # ['*'] for all
    table: str
    where: Optional[Expr]


@dataclass
class Delete:
    table: str
    where: Optional[Expr]


@dataclass
class Update:
    table: str
    assignments: List[Tuple[str, Literal]]
    where: Optional[Expr]


@dataclass
class BeginWork:
    pass


@dataclass
class CommitWork:
    pass


@dataclass
class RollbackWork:
    pass


@dataclass
class SetIsolation:
    level: str


@dataclass
class Load:
    """``LOAD FROM 'file' [DELIMITER 'c'] INSERT INTO table`` -- drives
    the opaque type's text-file *import* support function."""

    path: str
    table: str
    delimiter: str = "|"


@dataclass
class Unload:
    """``UNLOAD TO 'file' [DELIMITER 'c'] SELECT ...`` -- drives the
    text-file *export* support function."""

    path: str
    select: "Select"
    delimiter: str = "|"


@dataclass
class CheckIndex:
    name: str


@dataclass
class UpdateStatistics:
    index_name: str


@dataclass
class ShowStats:
    """``SHOW STATS [JSON]`` -- dump the observability metrics registry."""

    format: str = "text"  # 'text' | 'json'


@dataclass
class ShowSpans:
    """``SHOW SPANS [JSON] [WHERE CONNECTION = n] [LIMIT n]`` -- dump
    recorded statement span trees, optionally filtered to one serving
    connection and/or tail-limited to the most recent *n* roots."""

    format: str = "text"  # 'text' | 'json'
    connection: Optional[int] = None
    limit: Optional[int] = None


@dataclass
class ShowTrace:
    """``SHOW TRACE <trace_id> [JSON]`` -- every recorded span tree that
    carries the given propagated trace id (wire tracing)."""

    trace_id: str
    format: str = "text"  # 'text' | 'json'


@dataclass
class ShowWorkload:
    """``SHOW WORKLOAD [JSON] [TOP n BY calls|total_time|mean_time]`` --
    render the per-fingerprint workload model."""

    format: str = "text"  # 'text' | 'json'
    top: Optional[int] = None
    by: str = "total_time"


@dataclass
class ShowEvents:
    """``SHOW EVENTS [JSON] [LIMIT n]`` -- dump the structured event log
    (slow queries, errors, fault aborts)."""

    format: str = "text"  # 'text' | 'json'
    limit: Optional[int] = None


@dataclass
class SetSlowQueryThreshold:
    """``SET SLOW QUERY THRESHOLD <ms>`` / ``... OFF`` -- statements
    slower than the threshold emit ``slow_query`` events."""

    ms: Optional[float]  # None disarms


@dataclass
class SetTraceClass:
    """``SET TRACE CLASS <class> LEVEL <n>`` (Section 6.4, as SQL)."""

    trace_class: str
    level: int


@dataclass
class SetFault:
    """``SET FAULT '<name>' <action> [HIT n] [PROBABILITY p] [SEED s]
    [TIMES n | FOREVER]`` / ``SET FAULT '<name>' OFF`` / ``SET FAULT ALL
    OFF`` -- arm or disarm a deterministic failpoint (``repro.faults``).
    """

    name: Optional[str]  # None means ALL (only valid with action 'off')
    action: str          # 'raise' | 'crash' | 'torn' | 'corrupt' | 'off'
    hit: Optional[int] = None
    probability: Optional[float] = None
    seed: int = 0
    times: Optional[int] = 1


@dataclass
class SetReadStaleness:
    """``SET READ STALENESS <ms>`` / ``... LSN <n>`` / ``... OFF`` --
    the per-session bound on how far behind the primary a replica may
    be while still serving this session's reads (``repro.repl``)."""

    mode: Optional[str]  # 'ms' | 'lsn' | None (OFF)
    value: Optional[float] = None


@dataclass
class ShowReplicas:
    """``SHOW REPLICAS [JSON]`` -- replication topology and lag: the
    subscribers on a primary, the upstream link on a replica."""

    fmt: str = "text"


Statement = Union[
    CreateTable, DropTable, CreateFunction, DropFunction, CreateAccessMethod,
    DropAccessMethod, CreateOpclass, DropOpclass, CreateIndex, DropIndex,
    Insert, Select, Delete, Update, BeginWork, CommitWork, RollbackWork,
    SetIsolation, CheckIndex, UpdateStatistics, Load, Unload,
    ShowStats, ShowSpans, ShowTrace, ShowWorkload, ShowEvents,
    SetTraceClass, SetFault, SetSlowQueryThreshold,
    SetReadStaleness, ShowReplicas,
]

# ----------------------------------------------------------------------
# Tokenizer
# ----------------------------------------------------------------------

_TOKEN = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*'|"(?:[^"]|"")*")
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<word>[A-Za-z_][A-Za-z0-9_./]*)
      | (?P<op><=|>=|<>|!=|[(),=<>*;])
    )
    """,
    re.VERBOSE,
)


@dataclass
class Token:
    kind: str  # 'string' | 'number' | 'word' | 'op'
    value: str


def tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if not match:
            if text[pos:].strip() == "":
                break
            raise SqlError(f"cannot tokenize near: {text[pos:pos + 25]!r}")
        pos = match.end()
        for kind in ("string", "number", "word", "op"):
            value = match.group(kind)
            if value is not None:
                if kind == "string":
                    quote = value[0]
                    value = value[1:-1].replace(quote * 2, quote)
                tokens.append(Token(kind, value))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- primitives -----------------------------------------------------

    def peek(self) -> Optional[Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise SqlError("unexpected end of statement")
        self.pos += 1
        return token

    def at_keyword(self, *words: str) -> bool:
        token = self.peek()
        return (
            token is not None
            and token.kind == "word"
            and token.value.upper() in {w.upper() for w in words}
        )

    def expect_keyword(self, word: str) -> str:
        token = self.next()
        if token.kind != "word" or token.value.upper() != word.upper():
            raise SqlError(f"expected {word}, got {token.value!r}")
        return token.value

    def accept_keyword(self, word: str) -> bool:
        if self.at_keyword(word):
            self.next()
            return True
        return False

    def expect_op(self, op: str) -> None:
        token = self.next()
        if token.kind != "op" or token.value != op:
            raise SqlError(f"expected {op!r}, got {token.value!r}")

    def accept_op(self, op: str) -> bool:
        token = self.peek()
        if token is not None and token.kind == "op" and token.value == op:
            self.next()
            return True
        return False

    def identifier(self) -> str:
        token = self.next()
        if token.kind != "word":
            raise SqlError(f"expected identifier, got {token.value!r}")
        return token.value

    def done(self) -> None:
        self.accept_op(";")
        if self.peek() is not None:
            raise SqlError(f"trailing input: {self.peek().value!r}")

    # -- statements -------------------------------------------------------

    def statement(self) -> Statement:
        if self.at_keyword("CREATE"):
            return self._create()
        if self.at_keyword("DROP"):
            return self._drop()
        if self.at_keyword("INSERT"):
            return self._insert()
        if self.at_keyword("SELECT"):
            return self._select()
        if self.at_keyword("DELETE"):
            return self._delete()
        if self.at_keyword("UPDATE"):
            return self._update()
        if self.at_keyword("BEGIN"):
            self.next()
            self.accept_keyword("WORK")
            self.done()
            return BeginWork()
        if self.at_keyword("COMMIT"):
            self.next()
            self.accept_keyword("WORK")
            self.done()
            return CommitWork()
        if self.at_keyword("ROLLBACK"):
            self.next()
            self.accept_keyword("WORK")
            self.done()
            return RollbackWork()
        if self.at_keyword("SET"):
            self.next()
            if self.at_keyword("TRACE"):
                return self._set_trace_class()
            if self.at_keyword("FAULT"):
                return self._set_fault()
            if self.at_keyword("SLOW"):
                return self._set_slow_query_threshold()
            if self.at_keyword("READ"):
                return self._set_read_staleness()
            self.expect_keyword("ISOLATION")
            self.expect_keyword("TO")
            words = []
            while self.peek() is not None and self.peek().kind == "word":
                words.append(self.next().value)
            self.done()
            return SetIsolation(" ".join(words))
        if self.at_keyword("SHOW"):
            return self._show()
        if self.at_keyword("CHECK"):
            self.next()
            self.expect_keyword("INDEX")
            name = self.identifier()
            self.done()
            return CheckIndex(name)
        if self.at_keyword("LOAD"):
            return self._load()
        if self.at_keyword("UNLOAD"):
            return self._unload()
        raise SqlError(f"unsupported statement start: {self.peek().value!r}")

    def _set_trace_class(self) -> SetTraceClass:
        self.expect_keyword("TRACE")
        self.expect_keyword("CLASS")
        trace_class = self.identifier()
        self.expect_keyword("LEVEL")
        token = self.next()
        if token.kind != "number":
            raise SqlError(
                f"SET TRACE CLASS ... LEVEL needs a number, got {token.value!r}"
            )
        self.done()
        return SetTraceClass(trace_class, int(float(token.value)))

    def _set_fault(self) -> SetFault:
        self.expect_keyword("FAULT")
        if self.accept_keyword("ALL"):
            self.expect_keyword("OFF")
            self.done()
            return SetFault(name=None, action="off")
        token = self.next()
        if token.kind not in ("string", "word"):
            raise SqlError(
                f"SET FAULT needs a failpoint name, got {token.value!r}"
            )
        name = token.value
        if self.accept_keyword("OFF"):
            self.done()
            return SetFault(name=name, action="off")
        action_token = self.next()
        if action_token.kind != "word":
            raise SqlError(
                f"SET FAULT needs an action, got {action_token.value!r}"
            )
        action = action_token.value.lower()
        hit = probability = None
        seed = 0
        times: Optional[int] = 1
        while self.peek() is not None and self.peek().kind == "word":
            if self.accept_keyword("HIT"):
                hit = self._number("SET FAULT ... HIT", integral=True)
            elif self.accept_keyword("PROBABILITY"):
                probability = self._number("SET FAULT ... PROBABILITY")
            elif self.accept_keyword("SEED"):
                seed = self._number("SET FAULT ... SEED", integral=True)
            elif self.accept_keyword("TIMES"):
                times = self._number("SET FAULT ... TIMES", integral=True)
            elif self.accept_keyword("FOREVER"):
                times = None
            else:
                raise SqlError(
                    f"unexpected SET FAULT option {self.peek().value!r}"
                )
        self.done()
        return SetFault(
            name=name,
            action=action,
            hit=hit,
            probability=probability,
            seed=seed,
            times=times,
        )

    def _set_read_staleness(self) -> SetReadStaleness:
        self.expect_keyword("READ")
        self.expect_keyword("STALENESS")
        if self.accept_keyword("OFF"):
            self.done()
            return SetReadStaleness(mode=None)
        if self.accept_keyword("LSN"):
            lsn = self._number("SET READ STALENESS LSN", integral=True)
            if lsn < 0:
                raise SqlError("SET READ STALENESS LSN needs a value >= 0")
            self.done()
            return SetReadStaleness(mode="lsn", value=lsn)
        ms = self._number("SET READ STALENESS")
        if ms < 0:
            raise SqlError("SET READ STALENESS needs a value >= 0")
        self.done()
        return SetReadStaleness(mode="ms", value=ms)

    def _number(self, context: str, integral: bool = False):
        token = self.next()
        if token.kind != "number":
            raise SqlError(f"{context} needs a number, got {token.value!r}")
        value = float(token.value)
        return int(value) if integral else value

    def _set_slow_query_threshold(self) -> SetSlowQueryThreshold:
        self.expect_keyword("SLOW")
        self.expect_keyword("QUERY")
        self.expect_keyword("THRESHOLD")
        if self.accept_keyword("OFF"):
            self.done()
            return SetSlowQueryThreshold(ms=None)
        ms = self._number("SET SLOW QUERY THRESHOLD")
        if ms < 0:
            raise SqlError("SET SLOW QUERY THRESHOLD needs a value >= 0")
        self.done()
        return SetSlowQueryThreshold(ms=ms)

    def _show(self) -> Statement:
        self.expect_keyword("SHOW")
        if self.accept_keyword("STATS"):
            fmt = "json" if self.accept_keyword("JSON") else "text"
            self.done()
            return ShowStats(fmt)
        if self.accept_keyword("SPANS"):
            fmt = "json" if self.accept_keyword("JSON") else "text"
            connection = limit = None
            while self.peek() is not None and self.peek().kind == "word":
                if self.accept_keyword("WHERE"):
                    self.expect_keyword("CONNECTION")
                    self.expect_op("=")
                    connection = self._number(
                        "SHOW SPANS WHERE CONNECTION", integral=True
                    )
                elif self.accept_keyword("LIMIT"):
                    limit = self._number("SHOW SPANS LIMIT", integral=True)
                else:
                    raise SqlError(
                        f"unexpected SHOW SPANS option {self.peek().value!r}"
                    )
            self.done()
            return ShowSpans(fmt, connection=connection, limit=limit)
        if self.accept_keyword("TRACE"):
            # Trace ids are hex strings that may start with a digit, so
            # the tokenizer can split one into number/word runs: accept a
            # quoted string, or join the adjacent pieces back together.
            parts: List[str] = []
            while (
                self.peek() is not None
                and self.peek().kind in ("word", "number", "string")
                and not self.at_keyword("JSON")
            ):
                parts.append(self.next().value)
            if not parts:
                raise SqlError("SHOW TRACE needs a trace id")
            fmt = "json" if self.accept_keyword("JSON") else "text"
            self.done()
            return ShowTrace("".join(parts), fmt)
        if self.accept_keyword("WORKLOAD"):
            fmt = "json" if self.accept_keyword("JSON") else "text"
            top = None
            by = "total_time"
            if self.accept_keyword("TOP"):
                top = self._number("SHOW WORKLOAD TOP", integral=True)
                self.expect_keyword("BY")
                by = self.identifier().lower()
            self.done()
            return ShowWorkload(fmt, top=top, by=by)
        if self.accept_keyword("EVENTS"):
            fmt = "json" if self.accept_keyword("JSON") else "text"
            limit = None
            if self.accept_keyword("LIMIT"):
                limit = self._number("SHOW EVENTS LIMIT", integral=True)
            self.done()
            return ShowEvents(fmt, limit=limit)
        if self.accept_keyword("REPLICAS"):
            fmt = "json" if self.accept_keyword("JSON") else "text"
            self.done()
            return ShowReplicas(fmt)
        raise SqlError(
            "SHOW supports STATS, SPANS, TRACE, WORKLOAD, EVENTS, "
            "and REPLICAS"
            + (
                f", got {self.peek().value!r}"
                if self.peek() is not None
                else ""
            )
        )

    def _load(self) -> Load:
        self.expect_keyword("LOAD")
        self.expect_keyword("FROM")
        path_token = self.next()
        if path_token.kind != "string":
            raise SqlError("LOAD FROM needs a quoted file path")
        delimiter = "|"
        if self.accept_keyword("DELIMITER"):
            delim_token = self.next()
            if delim_token.kind != "string" or len(delim_token.value) != 1:
                raise SqlError("DELIMITER needs a one-character string")
            delimiter = delim_token.value
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.identifier()
        self.done()
        return Load(path_token.value, table, delimiter)

    def _unload(self) -> Unload:
        self.expect_keyword("UNLOAD")
        self.expect_keyword("TO")
        path_token = self.next()
        if path_token.kind != "string":
            raise SqlError("UNLOAD TO needs a quoted file path")
        delimiter = "|"
        if self.accept_keyword("DELIMITER"):
            delim_token = self.next()
            if delim_token.kind != "string" or len(delim_token.value) != 1:
                raise SqlError("DELIMITER needs a one-character string")
            delimiter = delim_token.value
        select = self._select()
        return Unload(path_token.value, select, delimiter)

    # -- CREATE family ----------------------------------------------------

    def _create(self) -> Statement:
        self.expect_keyword("CREATE")
        if self.at_keyword("TABLE"):
            return self._create_table()
        if self.at_keyword("FUNCTION"):
            return self._create_function()
        if self.at_keyword("SECONDARY"):
            return self._create_access_method()
        if self.at_keyword("OPCLASS") or self.at_keyword("DEFAULT"):
            return self._create_opclass()
        if self.at_keyword("INDEX"):
            return self._create_index()
        raise SqlError(f"unsupported CREATE object: {self.peek().value!r}")

    def _create_table(self) -> CreateTable:
        self.expect_keyword("TABLE")
        name = self.identifier()
        self.expect_op("(")
        columns: List[Tuple[str, str]] = []
        while True:
            col = self.identifier()
            type_name = self.identifier()
            columns.append((col, type_name))
            if not self.accept_op(","):
                break
        self.expect_op(")")
        self.done()
        return CreateTable(name, columns)

    def _create_function(self) -> CreateFunction:
        self.expect_keyword("FUNCTION")
        name = self.identifier()
        self.expect_op("(")
        arg_types: List[str] = []
        if not self.accept_op(")"):
            while True:
                arg_types.append(self.identifier())
                if not self.accept_op(","):
                    break
            self.expect_op(")")
        self.expect_keyword("RETURNING")
        return_type = self.identifier()
        self.expect_keyword("EXTERNAL")
        self.expect_keyword("NAME")
        token = self.next()
        if token.kind != "string":
            raise SqlError("EXTERNAL NAME needs a quoted path(symbol)")
        external = token.value
        self.expect_keyword("LANGUAGE")
        language = self.identifier()
        negator = commutator = None
        if self.accept_keyword("WITH"):
            self.expect_op("(")
            while True:
                hint = self.identifier().lower()
                self.expect_op("=")
                value = self.identifier()
                if hint == "negator":
                    negator = value
                elif hint == "commutator":
                    commutator = value
                else:
                    raise SqlError(
                        f"unknown function hint {hint!r} "
                        "(only NEGATOR and COMMUTATOR exist, Section 5.2)"
                    )
                if not self.accept_op(","):
                    break
            self.expect_op(")")
        self.done()
        return CreateFunction(
            name, tuple(arg_types), return_type, external, language,
            negator=negator, commutator=commutator,
        )

    def _create_access_method(self) -> CreateAccessMethod:
        self.expect_keyword("SECONDARY")
        self.expect_keyword("ACCESS_METHOD")
        name = self.identifier()
        self.expect_op("(")
        slots: Dict[str, str] = {}
        sptype = "S"
        while True:
            key = self.identifier()
            self.expect_op("=")
            token = self.next()
            value = token.value
            if key.lower() == "am_sptype":
                sptype = value.strip('"')
            else:
                slots[key.lower()] = value
            if not self.accept_op(","):
                break
        self.expect_op(")")
        self.done()
        return CreateAccessMethod(name, slots, sptype)

    def _create_opclass(self) -> CreateOpclass:
        default = self.accept_keyword("DEFAULT")
        self.expect_keyword("OPCLASS")
        name = self.identifier()
        self.expect_keyword("FOR")
        am_name = self.identifier()
        strategies: List[str] = []
        supports: List[str] = []
        self.expect_keyword("STRATEGIES")
        self.expect_op("(")
        while True:
            strategies.append(self.identifier())
            if not self.accept_op(","):
                break
        self.expect_op(")")
        if self.at_keyword("SUPPORT"):
            self.next()
            self.expect_op("(")
            while True:
                supports.append(self.identifier())
                if not self.accept_op(","):
                    break
            self.expect_op(")")
        self.done()
        return CreateOpclass(name, am_name, tuple(strategies), tuple(supports), default)

    def _create_index(self) -> CreateIndex:
        self.expect_keyword("INDEX")
        name = self.identifier()
        self.expect_keyword("ON")
        table = self.identifier()
        self.expect_op("(")
        columns: List[Tuple[str, Optional[str]]] = []
        while True:
            col = self.identifier()
            opclass = None
            if self.peek() is not None and self.peek().kind == "word" and not (
                self.at_keyword("USING") or self.at_keyword("IN")
            ):
                opclass = self.identifier()
            columns.append((col, opclass))
            if not self.accept_op(","):
                break
        self.expect_op(")")
        am_name = None
        if self.accept_keyword("USING"):
            am_name = self.identifier()
        space = None
        if self.accept_keyword("IN"):
            space = self.identifier()
        parameters: Dict[str, Any] = {}
        if self.accept_keyword("WITH"):
            self.expect_op("(")
            while True:
                key = self.identifier().lower()
                self.expect_op("=")
                token = self.next()
                if token.kind == "number":
                    number = float(token.value)
                    value: Any = int(number) if number.is_integer() else number
                elif token.kind in ("string", "word"):
                    value = token.value
                else:
                    raise SqlError(
                        f"CREATE INDEX WITH needs a literal value for "
                        f"{key!r}, got {token.value!r}"
                    )
                parameters[key] = value
                if not self.accept_op(","):
                    break
            self.expect_op(")")
        self.done()
        return CreateIndex(name, table, columns, am_name, space, parameters)

    # -- DROP family --------------------------------------------------------

    def _drop(self) -> Statement:
        self.expect_keyword("DROP")
        if self.accept_keyword("TABLE"):
            name = self.identifier()
            self.done()
            return DropTable(name)
        if self.accept_keyword("FUNCTION"):
            name = self.identifier()
            self.done()
            return DropFunction(name)
        if self.accept_keyword("SECONDARY"):
            self.expect_keyword("ACCESS_METHOD")
            name = self.identifier()
            self.done()
            return DropAccessMethod(name)
        if self.accept_keyword("OPCLASS"):
            name = self.identifier()
            self.done()
            return DropOpclass(name)
        if self.accept_keyword("INDEX"):
            name = self.identifier()
            self.done()
            return DropIndex(name)
        raise SqlError(f"unsupported DROP object: {self.peek().value!r}")

    # -- DML -----------------------------------------------------------------

    def _insert(self) -> Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.identifier()
        columns = None
        if self.accept_op("("):
            columns = []
            while True:
                columns.append(self.identifier())
                if not self.accept_op(","):
                    break
            self.expect_op(")")
        self.expect_keyword("VALUES")
        self.expect_op("(")
        values: List[Literal] = []
        while True:
            values.append(self._literal())
            if not self.accept_op(","):
                break
        self.expect_op(")")
        self.done()
        return Insert(table, columns, values)

    def _select(self) -> Select:
        self.expect_keyword("SELECT")
        columns: List[str] = []
        if self.accept_op("*"):
            columns = ["*"]
        else:
            while True:
                columns.append(self.identifier())
                if not self.accept_op(","):
                    break
        self.expect_keyword("FROM")
        table = self.identifier()
        where = self._where()
        self.done()
        return Select(columns, table, where)

    def _delete(self) -> Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.identifier()
        where = self._where()
        self.done()
        return Delete(table, where)

    def _update(self) -> Statement:
        self.expect_keyword("UPDATE")
        if self.at_keyword("STATISTICS"):
            self.next()
            self.expect_keyword("FOR")
            self.expect_keyword("INDEX")
            name = self.identifier()
            self.done()
            return UpdateStatistics(name)
        table = self.identifier()
        self.expect_keyword("SET")
        assignments: List[Tuple[str, Literal]] = []
        while True:
            col = self.identifier()
            self.expect_op("=")
            assignments.append((col, self._literal()))
            if not self.accept_op(","):
                break
        where = self._where()
        self.done()
        return Update(table, assignments, where)

    # -- expressions -----------------------------------------------------------

    def _where(self) -> Optional[Expr]:
        if self.accept_keyword("WHERE"):
            return self._or_expr()
        return None

    def _or_expr(self) -> Expr:
        children = [self._and_expr()]
        while self.accept_keyword("OR"):
            children.append(self._and_expr())
        return children[0] if len(children) == 1 else Or(children)

    def _and_expr(self) -> Expr:
        children = [self._unary_expr()]
        while self.accept_keyword("AND"):
            children.append(self._unary_expr())
        return children[0] if len(children) == 1 else And(children)

    def _unary_expr(self) -> Expr:
        if self.accept_keyword("NOT"):
            return Not(self._unary_expr())
        if self.accept_op("("):
            inner = self._or_expr()
            self.expect_op(")")
            return inner
        return self._atom()

    def _atom(self) -> Expr:
        token = self.peek()
        if token is None:
            raise SqlError("unexpected end of WHERE clause")
        if token.kind == "word":
            # Lookahead: word '(' -> function call; else column comparison.
            after = (
                self.tokens[self.pos + 1] if self.pos + 1 < len(self.tokens) else None
            )
            if after is not None and after.kind == "op" and after.value == "(":
                name = self.identifier()
                self.expect_op("(")
                args: List[Union[ColumnRef, Literal]] = []
                while True:
                    args.append(self._value_or_column())
                    if not self.accept_op(","):
                        break
                self.expect_op(")")
                return FunctionCall(name, args)
        left = self._value_or_column()
        op_token = self.next()
        if op_token.kind != "op" or op_token.value not in (
            "=", "<>", "!=", "<", "<=", ">", ">=",
        ):
            raise SqlError(f"expected comparison operator, got {op_token.value!r}")
        op = "<>" if op_token.value == "!=" else op_token.value
        right = self._value_or_column()
        return Comparison(op, left, right)

    def _value_or_column(self) -> Union[ColumnRef, Literal]:
        token = self.peek()
        if token is None:
            raise SqlError("unexpected end of expression")
        if token.kind == "word":
            return ColumnRef(self.next().value)
        return self._literal()

    def _literal(self) -> Literal:
        token = self.next()
        if token.kind == "string":
            return Literal(token.value, is_string=True)
        if token.kind == "number":
            return Literal(token.value, is_string=False, number=float(token.value))
        raise SqlError(f"expected a literal, got {token.value!r}")


def parse(text: str) -> Statement:
    """Parse one SQL statement."""
    parser = _Parser(tokenize(text))
    return parser.statement()
