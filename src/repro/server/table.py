"""Heap tables over the dbspace: rows, rowids, and page accounting.

Tables live in *dbspaces* (Section 5.3: table data and built-in index
data live there; there is no public DataBlade interface to them, which is
why virtual indices must use sbspaces or OS files).  Rows are slotted;
a rowid is stable for the lifetime of the row.  Sequential-scan I/O is
charged at ``rows_per_page`` rows per page so that the optimizer has an
honest seqscan cost to compare against ``am_scancost``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.server.datatypes import DataType
from repro.server.errors import CatalogError, ExecutionError

#: How many heap rows share one page for I/O-accounting purposes.
ROWS_PER_PAGE = 32


@dataclass
class Column:
    name: str
    data_type: DataType

    @property
    def type_name(self) -> str:
        return self.data_type.name


class Table:
    """A slotted heap table."""

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        if not columns:
            raise CatalogError(f"table {name} needs at least one column")
        seen = set()
        for column in columns:
            lowered = column.name.lower()
            if lowered in seen:
                raise CatalogError(f"duplicate column {column.name} in {name}")
            seen.add(lowered)
        self.name = name
        self.columns = list(columns)
        self._rows: List[Optional[Dict[str, Any]]] = []
        self._live = 0
        #: Pages read by sequential scans (the seqscan cost ledger).
        self.pages_read = 0

    # ------------------------------------------------------------------

    def column(self, name: str) -> Column:
        for column in self.columns:
            if column.name.lower() == name.lower():
                return column
        raise CatalogError(f"table {self.name} has no column {name}")

    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def has_column(self, name: str) -> bool:
        return any(c.name.lower() == name.lower() for c in self.columns)

    # ------------------------------------------------------------------

    def insert_row(self, values: Dict[str, Any]) -> int:
        """Validate against column types and append; returns the rowid."""
        normalized: Dict[str, Any] = {}
        for column in self.columns:
            if column.name not in values and not any(
                k.lower() == column.name.lower() for k in values
            ):
                raise ExecutionError(
                    f"INSERT into {self.name} is missing column {column.name}"
                )
            raw = values.get(column.name)
            if raw is None:
                raw = next(
                    v for k, v in values.items() if k.lower() == column.name.lower()
                )
            normalized[column.name] = column.data_type.validate(raw)
        extra = {
            k for k in values if not self.has_column(k)
        }
        if extra:
            raise ExecutionError(f"unknown columns in INSERT: {sorted(extra)}")
        self._rows.append(normalized)
        self._live += 1
        return len(self._rows) - 1

    def put_row(self, rowid: int, values: Dict[str, Any]) -> Dict[str, Any]:
        """Place a validated row at an exact *rowid* (replica apply path).

        Replication ships the primary's rowids; the replica must land
        each row at the same slot so later delete/update records resolve.
        The slot array is padded with tombstones when the primary's heap
        has holes the replica never saw (aborted inserts leave gaps in
        the primary's rowid sequence).  Idempotent: re-applying over an
        identical live row is a plain overwrite.
        """
        normalized = {
            column.name: column.data_type.validate(values[column.name])
            for column in self.columns
        }
        while len(self._rows) <= rowid:
            self._rows.append(None)
        if self._rows[rowid] is None:
            self._live += 1
        self._rows[rowid] = normalized
        return normalized

    def fetch(self, rowid: int) -> Dict[str, Any]:
        if not 0 <= rowid < len(self._rows) or self._rows[rowid] is None:
            raise ExecutionError(f"no row {rowid} in table {self.name}")
        return self._rows[rowid]

    def delete_row(self, rowid: int) -> Dict[str, Any]:
        row = self.fetch(rowid)
        self._rows[rowid] = None
        self._live -= 1
        return row

    def update_row(self, rowid: int, changes: Dict[str, Any]) -> Tuple[
        Dict[str, Any], Dict[str, Any]
    ]:
        """Apply *changes*; returns (old_row, new_row)."""
        old = dict(self.fetch(rowid))
        new = dict(old)
        for key, value in changes.items():
            column = self.column(key)
            new[column.name] = column.data_type.validate(value)
        self._rows[rowid] = new
        return old, new

    def scan(self) -> Iterator[Tuple[int, Dict[str, Any]]]:
        """Full scan, charging page reads."""
        for start in range(0, len(self._rows), ROWS_PER_PAGE):
            self.pages_read += 1
            for rowid in range(start, min(start + ROWS_PER_PAGE, len(self._rows))):
                row = self._rows[rowid]
                if row is not None:
                    yield rowid, row

    @property
    def row_count(self) -> int:
        return self._live

    @property
    def page_count(self) -> int:
        return max(1, -(-len(self._rows) // ROWS_PER_PAGE))

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name} {c.type_name}" for c in self.columns)
        return f"<Table {self.name}({cols}) rows={self._live}>"
