"""Operator classes (Step 4 of Section 4, and Section 5.2).

An operator class binds an access method to the data types it can index:
*strategy* functions are the boolean predicates usable in WHERE clauses
that make the optimizer consider a virtual index; *support* functions are
used internally by the access method to maintain the structure.  Several
operator classes may exist for one access method (Figure 7); one can be
the method's default, used when ``CREATE INDEX`` names no opclass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.server.errors import AccessMethodError


@dataclass
class OperatorClass:
    """A named set of strategy and support functions for an AM."""

    name: str
    am_name: str
    strategies: Tuple[str, ...]
    supports: Tuple[str, ...] = ()

    def is_strategy(self, function_name: str) -> bool:
        lowered = function_name.lower()
        return any(s.lower() == lowered for s in self.strategies)

    def is_support(self, function_name: str) -> bool:
        lowered = function_name.lower()
        return any(s.lower() == lowered for s in self.supports)

    def extended_with(
        self,
        strategies: Tuple[str, ...] = (),
        supports: Tuple[str, ...] = (),
    ) -> "OperatorClass":
        """Extending an existing operator class: same name, more
        functions (what adding support for a new data type does)."""
        return OperatorClass(
            self.name,
            self.am_name,
            self.strategies + tuple(s for s in strategies if not self.is_strategy(s)),
            self.supports + tuple(s for s in supports if not self.is_support(s)),
        )


class OperatorClassRegistry:
    """The SYSOPCLASSES slice of the catalog."""

    def __init__(self) -> None:
        self._classes: Dict[str, OperatorClass] = {}

    def register(self, opclass: OperatorClass) -> OperatorClass:
        key = opclass.name.lower()
        if key in self._classes:
            raise AccessMethodError(f"operator class {opclass.name} already exists")
        self._classes[key] = opclass
        return opclass

    def replace(self, opclass: OperatorClass) -> OperatorClass:
        """Used when an existing operator class is *extended* in place."""
        self._classes[opclass.name.lower()] = opclass
        return opclass

    def unregister(self, name: str) -> None:
        if self._classes.pop(name.lower(), None) is None:
            raise AccessMethodError(f"no operator class {name}")

    def get(self, name: str) -> OperatorClass:
        try:
            return self._classes[name.lower()]
        except KeyError:
            raise AccessMethodError(f"no operator class {name}") from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._classes

    def for_access_method(self, am_name: str) -> List[OperatorClass]:
        return [
            oc for oc in self._classes.values() if oc.am_name.lower() == am_name.lower()
        ]

    def names(self) -> List[str]:
        return sorted(self._classes)
