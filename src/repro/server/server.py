"""The server facade: the "Informix Dynamic Server" of the reproduction.

Wires together the clock, catalogs, shared-library registry, memory
manager, trace facility, lock manager, write-ahead log, sbspaces, and the
SQL executor.  DataBlade modules see this object through the index
descriptor (``td.server``) and use it the way real blades use the
DataBlade API: to open smart blobs, allocate named memory, emit trace
messages, and register transaction-end callbacks.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from repro.faults import SimulatedCrash
from repro.obs import Observability
from repro.obs.workload import fingerprint as workload_fingerprint
from repro.server import sql as ast
from repro.server.access_method import SecondaryAccessMethod, SpaceType
from repro.server.catalog import SystemCatalog
from repro.server.datatypes import TypeRegistry
from repro.server.errors import CatalogError
from repro.server.executor import Executor
from repro.server.memory import MemoryManager
from repro.server.session import Session
from repro.server.trace import TraceFacility
from repro.server.udr import SharedLibraryRegistry
from repro.storage.locks import LockManager
from repro.storage.sbspace import Sbspace
from repro.storage.wal import WriteAheadLog
from repro.temporal.chronon import Clock, Granularity


class DatabaseServer:
    """An embeddable, extensible relational engine."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        granularity: Granularity = Granularity.DAY,
        page_size: int = 2048,
        buffer_capacity: int = 64,
        node_cache_size: int = 128,
        statement_cache_size: int = 64,
        specialize_indexes: bool = True,
        faults=None,
    ) -> None:
        self.clock = clock if clock is not None else Clock(granularity=granularity)
        self.page_size = page_size
        #: Server-wide defaults for per-index caches; ``CREATE INDEX ...
        #: WITH (buffer_capacity = N, node_cache = M)`` overrides them.
        self.buffer_capacity = buffer_capacity
        self.node_cache_size = node_cache_size
        #: Parsed-statement cache bound (0 disables caching).
        self.statement_cache_size = statement_cache_size
        #: Default for per-index specialized/vectorized kernels; a
        #: ``CREATE INDEX ... WITH (specialize = ...)`` clause overrides.
        self.specialize_indexes = specialize_indexes
        self.types = TypeRegistry(self.clock.granularity)
        self.catalog = SystemCatalog(self.types)
        self.library = SharedLibraryRegistry()
        self.memory = MemoryManager()
        self.trace = TraceFacility()
        self.locks = LockManager()
        self.wal = WriteAheadLog()
        #: The observability hub (metrics registry + span recorder).
        self.obs = Observability(trace=self.trace)
        self.obs.attach_lock_manager(self.locks)
        self.obs.attach_wal(self.wal)
        self.sbspaces: Dict[str, Sbspace] = {}
        #: Fault-injection registry (``repro.faults``); ``None`` keeps
        #: every instrumented path at a single attribute test.
        self.faults = None
        if faults is not None:
            self.faults = faults
            self._wire_faults()
        self.executor = Executor(self)
        self._statement_cache: "OrderedDict[str, ast.Statement]" = OrderedDict()
        self._stmt_cache_hits = 0
        self._stmt_cache_misses = 0
        self.obs.metrics.register_collector(
            "sql.stmtcache",
            lambda: {
                "hits": self._stmt_cache_hits,
                "misses": self._stmt_cache_misses,
                "entries": len(self._statement_cache),
                "size": self.statement_cache_size,
            },
        )
        #: Bumped whenever storage is mutated behind the buffer pools
        #: (transaction rollback restores sbspace pages directly); cached
        #: index handles compare epochs and invalidate their pools.
        self.storage_epoch = 0
        self._txn_ids = itertools.count(1)
        #: The engine big lock: statement execution is serialized, the
        #: way SQLite serializes writers.  The serving layer overlaps
        #: network I/O, framing, queueing, and client think-time across
        #: connections while the core executes one statement at a time
        #: against shared catalog/sbspace/WAL state that was built
        #: single-threaded.  Re-entrant: ``run_script`` and UDRs may call
        #: back into ``execute``.
        self._engine_lock = threading.RLock()
        #: Simulated per-statement storage latency in seconds, slept
        #: while the engine lock is held -- the stand-in for the disk
        #: I/O a purely in-memory engine never waits on.  Benchmarks
        #: (``bench_perf_replication``) use it so the per-engine
        #: serialization, the resource read replicas multiply, is the
        #: bottleneck rather than a single shared host CPU.
        self.simulated_io_s = 0.0
        #: Guards the parsed-statement LRU (shared by worker threads).
        self._stmt_cache_lock = threading.Lock()
        #: The session internal work runs under (cost estimation etc.).
        self.system_session = Session(self)
        #: The most recent plan chosen by the optimizer (for inspection).
        self.last_plan = None
        #: Optimizer directive: always use an applicable virtual index.
        self.prefer_virtual_index = False
        #: Replication role state (``repro.repl``).  A replica is
        #: read-only for clients; the apply loop sets ``repl_applying``
        #: around its own writes to pass the executor's enforcement.
        self.read_only = False
        self.repl_applying = False
        #: Primary side: the WAL shipper, once a replica subscribes.
        self.repl_shipper = None
        #: Replica side: the link to the primary.
        self.repl_link = None

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------

    @contextmanager
    def provisioning(self):
        """Run node-local installation DDL (blade registration scripts).

        Statements in this scope are not logged for replication -- every
        node installs its own blades, the way real extensions must exist
        on every cluster member -- and they bypass a replica's read-only
        enforcement so replicas can be provisioned through the same
        scripts as primaries.
        """
        previous = self.repl_applying
        self.repl_applying = True
        try:
            yield self
        finally:
            self.repl_applying = previous

    def enable_wal_shipping(self) -> None:
        """Make the WAL a complete logical history (served primaries).

        Must run before any tables exist: replicas bootstrap by replaying
        the log from LSN 0, so DDL and row images have to be there from
        the first statement.
        """
        self.wal.ship_rows = True

    def ensure_wal_shipper(self):
        """Return the WAL shipper, creating it on the first subscriber.

        Also registers the ``repl.*`` metrics collector so shipping
        progress shows up in ``SHOW STATS`` and the Prometheus surface.
        """
        if self.repl_shipper is None:
            from repro.repl.shipper import WalShipper

            self.repl_shipper = WalShipper(self)
            self.obs.metrics.register_collector("repl", self.repl_stats)
        return self.repl_shipper

    def repl_stats(self) -> Dict[str, float]:
        """Flat ``repl.*`` counters for the observability collector."""
        if self.repl_shipper is not None:
            out = dict(self.repl_shipper.stats())
            out["role"] = 1  # 1 = primary
            return out
        if self.repl_link is not None:
            out = {
                key: value
                for key, value in self.repl_link.stats().items()
                if isinstance(value, (int, float))
            }
            out["role"] = 2  # 2 = replica
            return out
        return {}

    def repl_wait_for_lsn(self, min_lsn: int, timeout: float = 0.25) -> bool:
        """Block until this server has applied *min_lsn* (replicas).

        A primary trivially satisfies any token it issued.  On a replica
        this gives the stream a short grace window before the statement
        is bounced with ``REPLICA_STALE``.
        """
        link = self.repl_link
        if link is None:
            return True
        return link.wait_for_lsn(min_lsn, timeout)

    def replication_status(self) -> List[Dict[str, Any]]:
        """Rows for ``SHOW REPLICAS``: downstream subscribers on a
        primary, the upstream link on a replica, else empty."""
        if self.repl_shipper is not None:
            return self.repl_shipper.status_rows()
        if self.repl_link is not None:
            return [self.repl_link.status_row()]
        return []

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def ensure_faults(self):
        """Return the fault registry, creating and wiring one lazily.

        ``SET FAULT`` calls this, so a wire client can arm failpoints on
        a server that was started without a registry.
        """
        if self.faults is None:
            from repro.faults import FaultRegistry

            self.faults = FaultRegistry()
            self._wire_faults()
        return self.faults

    def _wire_faults(self) -> None:
        """Thread the registry through every instrumented component."""
        registry = self.faults
        self.wal.faults = registry
        self.locks.faults = registry
        for space in self.sbspaces.values():
            space.faults = registry
        for pool in self.obs.pools.values():
            pool.faults = registry
        self.obs.attach_faults(registry)

    # ------------------------------------------------------------------
    # Sessions and transactions
    # ------------------------------------------------------------------

    def create_session(self) -> Session:
        return Session(self)

    def next_txn_id(self) -> int:
        return next(self._txn_ids)

    def abort_session(self, session: Session) -> bool:
        """Roll back *session*'s open transaction, if any.

        The serving layer's dropped-connection and shutdown path: runs
        under the engine lock so the rollback cannot interleave with a
        statement, and releases every lock the transaction held (waking
        any blocked waiters).  Returns True when a transaction was
        aborted.
        """
        with self._engine_lock:
            if not session.in_transaction:
                return False
            self.bind_transaction(session, session.transaction.txn_id)
            session.rollback()
            return True

    def bind_transaction(self, session: Session, txn_id: int) -> None:
        for space in self.sbspaces.values():
            space.set_transaction(txn_id)

    def release_transaction(self, session: Session, txn_id: int) -> None:
        self.locks.release_all(txn_id)
        for space in self.sbspaces.values():
            space.end_transaction(txn_id)
            space.set_transaction(None)

    def rollback_storage(self, txn_id: int) -> None:
        # Rollback rewrites sbspace pages underneath any open buffer
        # pool; bump the epoch so cached index handles invalidate.
        self.storage_epoch += 1
        for space in self.sbspaces.values():
            space.rollback(txn_id)

    # ------------------------------------------------------------------
    # Storage spaces (Step 5: the onspaces command)
    # ------------------------------------------------------------------

    def create_sbspace(self, name: str = "sbspace1") -> Sbspace:
        """The ``onspaces -c -S`` analogue."""
        key = name.lower()
        if key in self.sbspaces:
            raise CatalogError(f"sbspace {name} already exists")
        space = Sbspace(
            name,
            page_size=self.page_size,
            lock_manager=self.locks,
            wal=self.wal,
            faults=self.faults,
        )
        self.sbspaces[key] = space
        self.obs.attach_sbspace(space)
        return space

    onspaces = create_sbspace

    def get_sbspace(self, name: str) -> Sbspace:
        try:
            return self.sbspaces[name.lower()]
        except KeyError:
            raise CatalogError(
                f"no sbspace {name}; create it first (onspaces)"
            ) from None

    def default_space_name(self, am: SecondaryAccessMethod) -> str:
        if am.sptype is SpaceType.SBSPACE:
            if not self.sbspaces:
                raise CatalogError(
                    "no sbspace exists; run create_sbspace() first (Step 5)"
                )
            return sorted(self.sbspaces)[0]
        return "external"

    # ------------------------------------------------------------------
    # SQL entry points
    # ------------------------------------------------------------------

    #: Statements that inspect observability state; they run unspanned so
    #: ``SHOW SPANS`` never renders its own half-open root span, and are
    #: kept out of the workload model and event log for the same reason.
    _INTROSPECTION = (
        ast.ShowStats,
        ast.ShowSpans,
        ast.ShowTrace,
        ast.ShowWorkload,
        ast.ShowEvents,
        ast.SetTraceClass,
        ast.SetFault,
        ast.SetSlowQueryThreshold,
        ast.ShowReplicas,
        ast.SetReadStaleness,
    )

    #: Statements whose text is logged for replication after success.
    _DDL_STATEMENTS = (
        ast.CreateTable,
        ast.DropTable,
        ast.CreateIndex,
        ast.DropIndex,
        ast.CreateFunction,
        ast.DropFunction,
        ast.CreateAccessMethod,
        ast.DropAccessMethod,
        ast.CreateOpclass,
        ast.DropOpclass,
    )

    def _maybe_log_ddl(self, statement: ast.Statement, sql_text: str) -> None:
        """Replication: record successful DDL verbatim for replay.

        Replicas cannot reconstruct catalog changes from physical page
        records (heap tables and the catalog are not WAL-logged), so
        they re-execute the statement text instead.  Skipped while this
        server is itself applying a replicated statement: the record
        already exists upstream."""
        if (
            self.wal.ship_rows
            and not self.repl_applying
            and isinstance(statement, self._DDL_STATEMENTS)
        ):
            self.wal.log_ddl(sql_text)

    def _parse(self, sql_text: str) -> ast.Statement:
        """Parse through the LRU statement cache, keyed by SQL text.

        Statement objects are never mutated after parsing (the executor
        and optimizer treat them as read-only), so the same parse tree
        can be re-executed.  Introspection statements bypass the cache:
        they are cheap, rare, and keeping them out means cache counters
        reflect only real workload statements.
        """
        if not self.statement_cache_size:
            return ast.parse(sql_text)
        with self._stmt_cache_lock:
            cached = self._statement_cache.get(sql_text)
            if cached is not None:
                self._statement_cache.move_to_end(sql_text)
                self._stmt_cache_hits += 1
                return cached
        statement = ast.parse(sql_text)
        if isinstance(statement, self._INTROSPECTION):
            return statement
        with self._stmt_cache_lock:
            self._stmt_cache_misses += 1
            self._statement_cache[sql_text] = statement
            if len(self._statement_cache) > self.statement_cache_size:
                self._statement_cache.popitem(last=False)
        return statement

    def clear_statement_cache(self) -> None:
        with self._stmt_cache_lock:
            self._statement_cache.clear()

    def execute(self, sql_text: str, session: Optional[Session] = None) -> Any:
        """Parse and execute one SQL statement.

        With observability enabled, the statement runs under a root span
        (``sql.<kind>``) whose children are the parse step, the plan
        choice, and every purpose-function call -- the EXPLAIN-ANALYZE
        view ``SHOW SPANS`` displays.
        """
        if session is None:
            session = self.system_session
        with self._engine_lock:
            if self.simulated_io_s:
                # repro: allow(blocking-under-engine-lock): simulated_io_s is
                # the benchmark knob that deliberately models statement cost
                # under the global lock (docs/serving.md); it is zero in
                # production configurations.
                time.sleep(self.simulated_io_s)
            if session.in_transaction:
                self.bind_transaction(session, session.transaction.txn_id)
            obs = self.obs
            if not obs.enabled:
                statement = self._parse(sql_text)
                result = self.executor.execute(statement, session)
                self._maybe_log_ddl(statement, sql_text)
                return result
            parse_start = obs.metrics.timer()
            statement = self._parse(sql_text)
            parse_end = obs.metrics.timer()
            if isinstance(statement, self._INTROSPECTION):
                return self.executor.execute(statement, session)
            kind = type(statement).__name__.lower()
            obs.metrics.inc("sql.statements")
            obs.metrics.inc("sql.statements." + kind)
            attrs = {"sql": sql_text}
            if session.connection_id is not None:
                # Serving-layer statements carry their connection id so
                # SHOW SPANS can be sliced per client.
                attrs["conn"] = session.connection_id
            if session.trace_id is not None:
                # Wire-propagated distributed-trace context: the root
                # span joins the client's trace so SHOW TRACE <id> (and
                # the explain_profile reply) stitch client -> server ->
                # executor -> storage into one tree.
                attrs["trace_id"] = session.trace_id
                if session.parent_span_id is not None:
                    attrs["parent_span_id"] = session.parent_span_id
            root = None
            try:
                with obs.span("sql." + kind, **attrs) as span:
                    root = span
                    obs.spans.add_completed_child(
                        "sql.parse", parse_start, parse_end
                    )
                    result = self.executor.execute(statement, session)
            except SimulatedCrash:
                # The engine "died" mid-statement: a real crash records
                # nothing further, so neither does a simulated one.
                raise
            except Exception as exc:
                if root is not None:
                    root.attrs["error"] = f"{type(exc).__name__}: {exc}"
                    fault_point = getattr(exc, "point", None)
                    if fault_point is not None:
                        root.attrs["fault"] = fault_point
                    self._record_statement(session, sql_text, root, None, exc)
                raise
            self._maybe_log_ddl(statement, sql_text)
            obs.metrics.observe("sql.statement_seconds", root.duration)
            self._record_statement(session, sql_text, root, result, None)
            return result

    def _record_statement(
        self, session: Session, sql_text: str, root, result: Any, exc
    ) -> None:
        """Fold one finished statement (its root span is closed, so its
        metric deltas are final) into the workload model and event log."""
        obs = self.obs
        session.last_root_span = root
        duration = root.duration
        rows = len(result) if isinstance(result, list) else None
        if exc is not None:
            obs.metrics.inc("sql.errors_total")
        obs.workload.observe(
            sql_text,
            duration,
            rows=rows,
            deltas=root.metric_deltas,
            error=exc is not None,
        )
        events = obs.events
        threshold = events.slow_query_threshold_ms
        slow = threshold is not None and duration * 1000.0 >= threshold
        if exc is None and not slow:
            return
        fields: Dict[str, Any] = {
            "sql": sql_text,
            "fingerprint": workload_fingerprint(sql_text),
            "duration_ms": duration * 1000.0,
        }
        if session.connection_id is not None:
            fields["conn"] = session.connection_id
        if root.trace_id is not None:
            fields["trace_id"] = root.trace_id
        if exc is not None:
            fields["error"] = f"{type(exc).__name__}: {exc}"
            fault_point = getattr(exc, "point", None)
            if fault_point is not None:
                fields["fault"] = fault_point
            events.emit("error", **fields)
        if slow:
            events.emit("slow_query", **fields)

    def run_script(self, script: str, session: Optional[Session] = None) -> List[Any]:
        """Execute a semicolon-separated script (BladeManager-style
        registration scripts are shipped in this form)."""
        results = []
        for statement in self._split_statements(script):
            results.append(self.execute(statement, session))
        return results

    @staticmethod
    def _split_statements(script: str) -> List[str]:
        statements: List[str] = []
        current: List[str] = []
        in_string: Optional[str] = None
        for char in script:
            if in_string:
                current.append(char)
                if char == in_string:
                    in_string = None
                continue
            if char in ("'", '"'):
                in_string = char
                current.append(char)
                continue
            if char == ";":
                text = "".join(current).strip()
                if text:
                    statements.append(text)
                current = []
                continue
            current.append(char)
        tail = "".join(current).strip()
        if tail:
            statements.append(tail)
        return statements
