"""The optimizer's virtual-index decision (Section 4, Step 4).

"When the query optimizer meets a function in the WHERE clause of an SQL
statement, it determines if a virtual index is applicable ... by checking
if a virtual index exists for the column involved in the function, and if
this function is declared as a strategy function in the operator class of
the corresponding access method."

The planner splits the WHERE clause into top-level conjuncts, converts
the conjuncts that are strategy-function predicates over one indexed
column into a qualification descriptor (complex AND/OR combinations are
passed through whole; the DataBlade breaks them up, Section 6.3), keeps
the remainder as a residual filter, and compares ``am_scancost`` against
the sequential-scan page count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.server.access_method import (
    BooleanOperator,
    CompoundQualification,
    Qualification,
    SimpleQualification,
)
from repro.server.catalog import IndexInfo
from repro.server.errors import SqlError
from repro.server.sql import And, ColumnRef, Comparison, Expr, FunctionCall, Literal, Not, Or
from repro.server.table import Table


@dataclass
class SeqScanPlan:
    table: Table
    residual: Optional[Expr]
    cost: float


@dataclass
class IndexScanPlan:
    table: Table
    index: IndexInfo
    qualification: Qualification
    residual: Optional[Expr]
    cost: float


Plan = Union[SeqScanPlan, IndexScanPlan]


def _conjuncts(expr: Optional[Expr]) -> List[Expr]:
    if expr is None:
        return []
    if isinstance(expr, And):
        return list(expr.children)
    return [expr]


def _rebuild_conjunction(conjuncts: List[Expr]) -> Optional[Expr]:
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return And(conjuncts)


#: Comparison operators map onto strategy-function spellings, the way
#: the server maps ``>`` onto the B+-tree's ``GreaterThan()`` strategy.
#: Different blades register the same semantics under prefixed names.
_OPERATOR_STRATEGY_NAMES = {
    "=": {"equal", "bt_equal", "hb_equal", "gs_numequal", "numequal"},
    ">": {"greaterthan", "bt_greaterthan", "hb_greaterthan", "gs_greaterthan"},
    ">=": {
        "greaterthanorequal", "bt_greaterthanorequal",
        "hb_greaterthanorequal", "gs_greaterthanorequal",
    },
    "<": {"lessthan", "bt_lessthan", "hb_lessthan", "gs_lessthan"},
    "<=": {
        "lessthanorequal", "bt_lessthanorequal", "hb_lessthanorequal",
        "gs_lessthanorequal",
    },
}


def _convert(expr: Expr, index: IndexInfo, table: Table, server) -> Optional[
    Qualification
]:
    """Convert an expression into a qualification for *index*, or None.

    Only single-column predicates survive (the paper's restriction):
    ``f(column, constant)``, ``f(constant, column)``, ``f(column)``,
    where ``f`` is a strategy function of the index's operator class and
    ``column`` is the indexed column.  Comparison operators are treated
    as spellings of the corresponding strategy functions when the
    opclass declares them (the B+-tree's GreaterThan/LessThanOrEqual).
    """
    if isinstance(expr, FunctionCall):
        return _convert_call(expr, index, table, server)
    if isinstance(expr, Comparison):
        return _convert_comparison(expr, index, table, server)
    if isinstance(expr, (And, Or)):
        children = [_convert(child, index, table, server) for child in expr.children]
        if any(child is None for child in children):
            return None
        operator = (
            BooleanOperator.AND if isinstance(expr, And) else BooleanOperator.OR
        )
        return CompoundQualification(operator, children)  # type: ignore[arg-type]
    return None  # comparisons and NOT never reach the index interface


def _convert_call(
    call: FunctionCall, index: IndexInfo, table: Table, server
) -> Optional[SimpleQualification]:
    opclasses = [server.catalog.opclasses.get(name) for name in index.opclass_names]
    if not any(oc.is_strategy(call.name) for oc in opclasses):
        return None
    columns = [a for a in call.args if isinstance(a, ColumnRef)]
    literals = [a for a in call.args if isinstance(a, Literal)]
    if len(columns) != 1 or len(columns) + len(literals) != len(call.args):
        return None
    column = columns[0]
    if column.name.lower() not in (c.lower() for c in index.columns):
        return None
    if not literals:
        return SimpleQualification(
            call.name, column.name, has_constant=False
        )
    if len(literals) != 1 or len(call.args) != 2:
        return None
    column_type = table.column(column.name).data_type
    constant = (
        column_type.input(literals[0].text)
        if literals[0].is_string
        else literals[0].python_value
    )
    return SimpleQualification(
        call.name,
        column.name,
        constant=constant,
        constant_first=isinstance(call.args[0], Literal),
    )


#: CPU cost, in page-read equivalents, of one UDR invocation during a
#: sequential scan (strategy functions are real code, not comparisons).
_UDR_EVAL_COST = 0.02


def _contains_udr_call(expr: Optional[Expr]) -> bool:
    if expr is None:
        return False
    if isinstance(expr, FunctionCall):
        return True
    if isinstance(expr, (And, Or)):
        return any(_contains_udr_call(child) for child in expr.children)
    if isinstance(expr, Not):
        return _contains_udr_call(expr.child)
    return False


def _convert_comparison(
    cmp: Comparison, index: IndexInfo, table: Table, server
) -> Optional[SimpleQualification]:
    spellings = _OPERATOR_STRATEGY_NAMES.get(cmp.op)
    if spellings is None:
        return None
    sides = (cmp.left, cmp.right)
    columns = [s for s in sides if isinstance(s, ColumnRef)]
    literals = [s for s in sides if isinstance(s, Literal)]
    if len(columns) != 1 or len(literals) != 1:
        return None
    column = columns[0]
    if column.name.lower() not in (c.lower() for c in index.columns):
        return None
    # Does any of the index's opclasses declare a strategy spelling this
    # operator (e.g. "GreaterThan" or "BT_GreaterThan")?
    strategy_name = None
    for opclass_name in index.opclass_names:
        opclass = server.catalog.opclasses.get(opclass_name)
        for strategy in opclass.strategies:
            if strategy.lower() in spellings:
                strategy_name = strategy
                break
        if strategy_name:
            break
    if strategy_name is None:
        return None
    column_type = table.column(column.name).data_type
    literal = literals[0]
    constant = (
        column_type.input(literal.text)
        if literal.is_string
        else column_type.validate(literal.python_value)
    )
    return SimpleQualification(
        strategy_name,
        column.name,
        constant=constant,
        constant_first=isinstance(cmp.left, Literal),
    )


def choose_plan(server, table: Table, where: Optional[Expr]) -> Plan:
    """Pick the cheapest access path for the WHERE clause.

    When ``server.prefer_virtual_index`` is set (the analogue of an
    optimizer directive), any applicable virtual index wins outright.
    """
    seq_cost = float(table.page_count)
    if _contains_udr_call(where):
        seq_cost += _UDR_EVAL_COST * table.row_count
    best: Plan = SeqScanPlan(table, where, seq_cost)
    index_plans: List[IndexScanPlan] = []
    conjuncts = _conjuncts(where)
    for index in server.catalog.indices_on(table.name):
        usable: List[Qualification] = []
        residual: List[Expr] = []
        for conjunct in conjuncts:
            qual = _convert(conjunct, index, table, server)
            if qual is None:
                residual.append(conjunct)
            else:
                usable.append(qual)
        if not usable:
            continue
        qualification: Qualification = (
            usable[0]
            if len(usable) == 1
            else CompoundQualification(BooleanOperator.AND, usable)
        )
        cost = server.executor.estimate_scan_cost(index, qualification)
        plan = IndexScanPlan(
            table, index, qualification, _rebuild_conjunction(residual), cost
        )
        index_plans.append(plan)
        if plan.cost < best.cost:
            best = plan
    if index_plans and getattr(server, "prefer_virtual_index", False):
        return min(index_plans, key=lambda p: p.cost)
    return best
