"""System catalogs: SYSTABLES, SYSAMS, SYSINDICES, SYSFRAGMENTS, ...

Section 4 (Step 3, Step 6): ``CREATE SECONDARY ACCESS_METHOD`` enters the
access method into SYSAMS; ``CREATE INDEX`` adds rows to SYSINDICES and
SYSFRAGMENTS.  The reproduction keeps each catalog as a typed registry
plus a uniform row view for introspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.server.access_method import AccessMethodRegistry, IndexDescriptor
from repro.server.errors import CatalogError
from repro.server.opclass import OperatorClassRegistry
from repro.server.table import Table
from repro.server.udr import RoutineRegistry
from repro.server.datatypes import TypeRegistry


@dataclass
class IndexInfo:
    """One SYSINDICES row: a virtual index instance."""

    name: str
    table_name: str
    columns: Tuple[str, ...]
    am_name: str
    opclass_names: Tuple[str, ...]
    space_name: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    descriptor: Optional[IndexDescriptor] = None


@dataclass
class FragmentInfo:
    """One SYSFRAGMENTS row (the reproduction keeps one fragment)."""

    index_name: str
    fragid: int = 0


class SystemCatalog:
    """All catalog slices behind one facade."""

    def __init__(self, types: TypeRegistry) -> None:
        self.types = types
        self.routines = RoutineRegistry()
        self.access_methods = AccessMethodRegistry()
        self.opclasses = OperatorClassRegistry()
        self._tables: Dict[str, Table] = {}
        self._indices: Dict[str, IndexInfo] = {}
        self._fragments: List[FragmentInfo] = []

    # -- SYSTABLES -------------------------------------------------------

    def create_table(self, table: Table) -> Table:
        key = table.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {table.name} already exists")
        self._tables[key] = table
        return table

    def drop_table(self, name: str) -> Table:
        table = self.get_table(name)
        for index in self.indices_on(name):
            raise CatalogError(
                f"table {name} still has index {index.name}; drop it first"
            )
        del self._tables[name.lower()]
        return table

    def get_table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table {name}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    # -- SYSINDICES / SYSFRAGMENTS ----------------------------------------

    def create_index(self, info: IndexInfo) -> IndexInfo:
        key = info.name.lower()
        if key in self._indices:
            raise CatalogError(f"index {info.name} already exists")
        self.get_table(info.table_name)  # must exist
        self._indices[key] = info
        self._fragments.append(FragmentInfo(info.name, 0))
        return info

    def drop_index(self, name: str) -> IndexInfo:
        try:
            info = self._indices.pop(name.lower())
        except KeyError:
            raise CatalogError(f"no index {name}") from None
        self._fragments = [
            f for f in self._fragments if f.index_name.lower() != name.lower()
        ]
        return info

    def get_index(self, name: str) -> IndexInfo:
        try:
            return self._indices[name.lower()]
        except KeyError:
            raise CatalogError(f"no index {name}") from None

    def has_index(self, name: str) -> bool:
        return name.lower() in self._indices

    def indices_on(self, table_name: str, column: Optional[str] = None) -> List[
        IndexInfo
    ]:
        result = []
        for info in self._indices.values():
            if info.table_name.lower() != table_name.lower():
                continue
            if column is not None and column.lower() not in (
                c.lower() for c in info.columns
            ):
                continue
            result.append(info)
        return result

    def index_names(self) -> List[str]:
        return sorted(self._indices)

    def fragments(self, index_name: str) -> List[FragmentInfo]:
        return [
            f for f in self._fragments if f.index_name.lower() == index_name.lower()
        ]

    # -- duplicate-index guard (Table 5, grt_create step 4) ---------------

    def find_equivalent_index(
        self,
        table_name: str,
        columns: Tuple[str, ...],
        am_name: str,
        parameters: Dict[str, Any],
    ) -> Optional[IndexInfo]:
        for info in self.indices_on(table_name):
            if (
                tuple(c.lower() for c in info.columns)
                == tuple(c.lower() for c in columns)
                and info.am_name.lower() == am_name.lower()
                and info.parameters == parameters
            ):
                return info
        return None
