"""Error hierarchy of the server layer."""

from __future__ import annotations


class ServerError(Exception):
    """Base class for every error raised by the DBMS substrate."""


class SqlError(ServerError):
    """Syntax or semantic error in an SQL statement."""


class CatalogError(ServerError):
    """Unknown or duplicate catalog object (table, index, type, ...)."""


class DataTypeError(ServerError):
    """Invalid value for a data type, or unknown type."""


class UdrError(ServerError):
    """User-defined-routine registration or resolution failure."""


class AccessMethodError(ServerError):
    """Misuse of the secondary-access-method interface."""


class ExecutionError(ServerError):
    """Runtime failure while executing a statement."""


class TransactionError(ServerError):
    """Transaction state violation (nested begin, commit w/o begin, ...)."""


class ReadOnlyError(ServerError):
    """A write statement reached a read-only replica."""


class ReplicaStaleError(ServerError):
    """A replica could not satisfy the session's staleness bound.

    The serving layer maps this to the ``REPLICA_STALE`` wire code so
    routing clients retry the statement on another endpoint."""
