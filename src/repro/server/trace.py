"""Trace messages with trace classes and levels (Section 6.4).

"Our findings are that the extensive usage of trace messages is a good
instrument for debugging a DataBlade module.  Trace messages are directed
to a special trace file and can be switched on or off selectively using
trace classes and trace levels."

The reproduction uses the same facility both as the debugging aid the
paper describes and as the instrumentation with which the Figure 6 and
Table 5 benchmarks observe purpose-function call sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TextIO


@dataclass(frozen=True)
class TraceMessage:
    sequence: int
    trace_class: str
    level: int
    text: str

    def __str__(self) -> str:
        return f"[{self.trace_class}:{self.level}] {self.text}"


class TraceFacility:
    """Collects trace messages, filtered by per-class trace levels."""

    def __init__(self, sink: Optional[TextIO] = None) -> None:
        self._levels: Dict[str, int] = {}
        self._messages: List[TraceMessage] = []
        self._sink = sink
        self._sequence = 0

    def set_level(self, trace_class: str, level: int) -> None:
        """Enable *trace_class* up to *level* (0 disables it)."""
        if level <= 0:
            self._levels.pop(trace_class, None)
        else:
            self._levels[trace_class] = level

    def enabled(self, trace_class: str, level: int = 1) -> bool:
        return self._levels.get(trace_class, 0) >= level

    def emit(self, trace_class: str, level: int, text: str) -> None:
        """Record a message if the class is enabled at this level."""
        if not self.enabled(trace_class, level):
            return
        message = TraceMessage(self._sequence, trace_class, level, text)
        self._sequence += 1
        self._messages.append(message)
        if self._sink is not None:
            self._sink.write(str(message) + "\n")

    # ------------------------------------------------------------------

    def messages(self, trace_class: Optional[str] = None) -> List[TraceMessage]:
        if trace_class is None:
            return list(self._messages)
        return [m for m in self._messages if m.trace_class == trace_class]

    def texts(self, trace_class: Optional[str] = None) -> List[str]:
        return [m.text for m in self.messages(trace_class)]

    def clear(self) -> None:
        """Forget collected messages and restart sequence numbering, so
        repeated benchmark runs in one process reproduce identical
        Figure 6 call-sequence numbers."""
        self._messages.clear()
        self._sequence = 0

    def levels(self) -> Dict[str, int]:
        """The currently enabled trace classes and their levels."""
        return dict(self._levels)
