"""The server's type system, including opaque user-defined types.

Built-in types cover what the paper's discussion needs (``INTEGER``,
``FLOAT``, ``TEXT``/``LVARCHAR``, ``BOOLEAN``, ``DATE``, ``DATETIME``).
An :class:`OpaqueType` (Step 1 of Section 4) is a type the server does not
interpret; the DataBlade supplies *type support functions*:

1. text input/output -- between SQL literals and the internal structure;
2. binary send/receive -- between the internal structure and the
   client/server wire representation;
3. text-file import/export -- for the ``LOAD`` command.

(The paper notes these pairs perform very similar tasks; the default
import/export simply reuse input/output, exactly the de-duplication the
authors wished BladeSmith had done.)
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.server.errors import DataTypeError
from repro.temporal.chronon import Granularity, format_chronon, parse_chronon


class DataType:
    """Base class: a named type with text and binary codecs."""

    def __init__(self, name: str) -> None:
        self.name = name.upper()

    # -- text I/O -------------------------------------------------------

    def input(self, text: str) -> Any:
        """Parse the SQL textual representation."""
        raise NotImplementedError

    def output(self, value: Any) -> str:
        """Render to the SQL textual representation."""
        return str(value)

    # -- binary send/receive ---------------------------------------------

    def send(self, value: Any) -> bytes:
        """Encode for the client/server connection."""
        return self.output(value).encode("utf-8")

    def receive(self, data: bytes) -> Any:
        return self.input(data.decode("utf-8"))

    # -- text-file import/export (the LOAD command) ----------------------

    def import_text(self, text: str) -> Any:
        return self.input(text)

    def export_text(self, value: Any) -> str:
        return self.output(value)

    # -- validation -------------------------------------------------------

    def validate(self, value: Any) -> Any:
        """Check (and possibly coerce) a Python-level value."""
        return value

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class IntegerType(DataType):
    def __init__(self) -> None:
        super().__init__("INTEGER")

    def input(self, text: str) -> int:
        try:
            return int(text)
        except ValueError:
            raise DataTypeError(f"invalid INTEGER literal: {text!r}") from None

    def validate(self, value: Any) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise DataTypeError(f"INTEGER expected, got {value!r}")
        return value


class FloatType(DataType):
    def __init__(self) -> None:
        super().__init__("FLOAT")

    def input(self, text: str) -> float:
        try:
            return float(text)
        except ValueError:
            raise DataTypeError(f"invalid FLOAT literal: {text!r}") from None

    def validate(self, value: Any) -> float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise DataTypeError(f"FLOAT expected, got {value!r}")
        return float(value)


class TextType(DataType):
    def __init__(self, name: str = "LVARCHAR") -> None:
        super().__init__(name)

    def input(self, text: str) -> str:
        return text

    def validate(self, value: Any) -> str:
        if not isinstance(value, str):
            raise DataTypeError(f"{self.name} expected, got {value!r}")
        return value


class BooleanType(DataType):
    def __init__(self) -> None:
        super().__init__("BOOLEAN")

    def input(self, text: str) -> bool:
        lowered = text.strip().lower()
        if lowered in ("t", "true", "1"):
            return True
        if lowered in ("f", "false", "0"):
            return False
        raise DataTypeError(f"invalid BOOLEAN literal: {text!r}")

    def output(self, value: Any) -> str:
        return "t" if value else "f"

    def validate(self, value: Any) -> bool:
        if not isinstance(value, bool):
            raise DataTypeError(f"BOOLEAN expected, got {value!r}")
        return value


class DateType(DataType):
    """Days (or months) as integer chronons, in the paper's text formats."""

    def __init__(self, granularity: Granularity = Granularity.DAY) -> None:
        super().__init__("DATE")
        self.granularity = granularity

    def input(self, text: str) -> int:
        try:
            return parse_chronon(text, self.granularity)
        except ValueError as exc:
            raise DataTypeError(f"invalid DATE literal: {text!r}") from exc

    def output(self, value: Any) -> str:
        return format_chronon(value, self.granularity)

    def validate(self, value: Any) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise DataTypeError(f"DATE expected, got {value!r}")
        return value


class DateTimeType(DataType):
    """Fraction-of-a-second timestamps (ISO text format)."""

    def __init__(self) -> None:
        super().__init__("DATETIME")

    def input(self, text: str) -> datetime.datetime:
        try:
            return datetime.datetime.fromisoformat(text.strip())
        except ValueError:
            raise DataTypeError(f"invalid DATETIME literal: {text!r}") from None

    def output(self, value: Any) -> str:
        return value.isoformat(sep=" ")

    def validate(self, value: Any) -> datetime.datetime:
        if not isinstance(value, datetime.datetime):
            raise DataTypeError(f"DATETIME expected, got {value!r}")
        return value


class OpaqueType(DataType):
    """A user-defined type with developer-supplied support functions.

    ``input_fn``/``output_fn`` are mandatory; binary and import/export
    support default to being derived from the text pair.
    """

    def __init__(
        self,
        name: str,
        input_fn: Callable[[str], Any],
        output_fn: Callable[[Any], str],
        send_fn: Optional[Callable[[Any], bytes]] = None,
        receive_fn: Optional[Callable[[bytes], Any]] = None,
        import_fn: Optional[Callable[[str], Any]] = None,
        export_fn: Optional[Callable[[Any], str]] = None,
        validate_fn: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        super().__init__(name)
        self._input = input_fn
        self._output = output_fn
        self._send = send_fn
        self._receive = receive_fn
        self._import = import_fn
        self._export = export_fn
        self._validate = validate_fn

    def input(self, text: str) -> Any:
        return self._input(text)

    def output(self, value: Any) -> str:
        return self._output(value)

    def send(self, value: Any) -> bytes:
        if self._send is not None:
            return self._send(value)
        return super().send(value)

    def receive(self, data: bytes) -> Any:
        if self._receive is not None:
            return self._receive(data)
        return super().receive(data)

    def import_text(self, text: str) -> Any:
        if self._import is not None:
            return self._import(text)
        return self.input(text)

    def export_text(self, value: Any) -> str:
        if self._export is not None:
            return self._export(value)
        return self.output(value)

    def validate(self, value: Any) -> Any:
        if self._validate is not None:
            return self._validate(value)
        return value


class TypeRegistry:
    """The SYSTYPES slice of the catalog."""

    def __init__(self, granularity: Granularity = Granularity.DAY) -> None:
        self._types: Dict[str, DataType] = {}
        for builtin in (
            IntegerType(),
            FloatType(),
            TextType("LVARCHAR"),
            TextType("TEXT"),
            BooleanType(),
            DateType(granularity),
            DateTimeType(),
        ):
            self._types[builtin.name] = builtin

    def register(self, data_type: DataType) -> DataType:
        if data_type.name in self._types:
            raise DataTypeError(f"type {data_type.name} already exists")
        self._types[data_type.name] = data_type
        return data_type

    def unregister(self, name: str) -> None:
        name = name.upper()
        if name not in self._types:
            raise DataTypeError(f"no type {name}")
        del self._types[name]

    def get(self, name: str) -> DataType:
        try:
            return self._types[name.upper()]
        except KeyError:
            raise DataTypeError(f"no type {name.upper()}") from None

    def __contains__(self, name: str) -> bool:
        return name.upper() in self._types

    def names(self):
        return sorted(self._types)
