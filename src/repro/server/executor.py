"""Statement execution: DDL registration and the Figure 6 call protocol.

The executor turns parsed statements into catalog changes and data-flow,
invoking access-method purpose functions in exactly the order of the
paper's Figure 6:

* ``INSERT``:  ``am_open`` -> ``am_insert`` -> ``am_close``
* ``SELECT`` (virtual index chosen): ``am_open`` -> ``am_beginscan`` ->
  ``am_getnext`` (repeated) -> ``am_endscan`` -> ``am_close``

When no virtual index applies (or the seqscan is cheaper), strategy
functions run as ordinary UDRs against every row.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.server import sql as ast
from repro.server.access_method import (
    IndexDescriptor,
    ScanDescriptor,
    SecondaryAccessMethod,
    SpaceType,
)
from repro.server.catalog import IndexInfo
from repro.server.errors import (
    AccessMethodError,
    CatalogError,
    ExecutionError,
    ReadOnlyError,
    ReplicaStaleError,
    SqlError,
)
from repro.server.memory import Duration
from repro.server.opclass import OperatorClass
from repro.server.optimizer import IndexScanPlan, SeqScanPlan, choose_plan
from repro.server.table import Column, Table
from repro.server.udr import Routine

#: Trace class used for purpose-function call sequences (Figure 6).
TRACE_AM = "am"


class Executor:
    def __init__(self, server) -> None:
        self.server = server

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    #: Statements a read-only replica refuses from clients.  The apply
    #: loop bypasses the check via ``server.repl_applying`` (it must
    #: re-execute replicated DDL locally).
    _WRITES = (
        ast.CreateTable,
        ast.DropTable,
        ast.CreateFunction,
        ast.DropFunction,
        ast.CreateAccessMethod,
        ast.DropAccessMethod,
        ast.CreateOpclass,
        ast.DropOpclass,
        ast.CreateIndex,
        ast.DropIndex,
        ast.Insert,
        ast.Delete,
        ast.Update,
        ast.Load,
    )

    def execute(self, statement: ast.Statement, session) -> Any:
        handler = self._HANDLERS.get(type(statement))
        if handler is None:
            raise SqlError(f"unsupported statement: {statement!r}")
        if (
            self.server.read_only
            and not self.server.repl_applying
            and isinstance(statement, self._WRITES)
        ):
            raise ReadOnlyError(
                "this server is a read-only replica; "
                "send writes to the primary"
            )
        try:
            return handler(self, statement, session)
        finally:
            self.server.memory.end_duration(Duration.PER_STATEMENT)

    # ------------------------------------------------------------------
    # Replication hooks
    # ------------------------------------------------------------------

    def _export_row(self, table: Table, row: Dict[str, Any]) -> Dict[str, str]:
        """Render a heap row to wire text, one field per column (the
        same support functions LOAD/UNLOAD use)."""
        return {
            column.name: column.data_type.export_text(row[column.name])
            for column in table.columns
        }

    def _log_row(
        self,
        session,
        kind: str,
        table: Table,
        rowid: int,
        row: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append a logical row record for replication (no-op unless the
        WAL is shipping).  Runs inside the statement's transaction, so a
        later abort makes replicas discard the record."""
        wal = self.server.wal
        if not wal.ship_rows or self.server.repl_applying:
            return
        txn_id = session.transaction.txn_id
        if kind == "insert":
            wal.log_row_insert(
                txn_id, table.name, rowid, self._export_row(table, row)
            )
        elif kind == "delete":
            wal.log_row_delete(txn_id, table.name, rowid)
        else:
            wal.log_row_update(
                txn_id, table.name, rowid, self._export_row(table, row)
            )

    def _check_staleness(self, session) -> None:
        """Enforce the session's ``SET READ STALENESS`` bound (replicas)."""
        bound = session.read_staleness
        link = self.server.repl_link
        if bound is None or link is None:
            return
        mode, value = bound
        if mode == "lsn":
            lag = link.lag_records()
            if lag > value:
                raise ReplicaStaleError(
                    f"replica is {lag} records behind the primary "
                    f"(bound: {value:g})"
                )
        else:
            lag_ms = link.lag_seconds() * 1000.0
            if lag_ms > value:
                raise ReplicaStaleError(
                    f"replica is {lag_ms:.0f} ms behind the primary "
                    f"(bound: {value:g} ms)"
                )

    # ------------------------------------------------------------------
    # Purpose-function plumbing
    # ------------------------------------------------------------------

    def call_purpose(self, am: SecondaryAccessMethod, slot: str, *args) -> Any:
        """Dynamically resolve and invoke a purpose function, tracing the
        call for the Figure 6 / Table 5 reproductions."""
        if not am.has(slot):
            if slot in ("am_scancost", "am_stats", "am_check"):
                return None
            raise AccessMethodError(
                f"access method {am.name} does not provide {slot}"
            )
        routine = am.routine_cache.get(slot)
        if routine is None:
            name = am.purpose_functions[slot]
            routine = self.server.catalog.routines.resolve_any(name)
            am.routine_cache[slot] = routine
        self.server.trace.emit(TRACE_AM, 1, f"{am.name}.{slot}")
        self.server.catalog.routines.invocations += 1
        obs = self.server.obs
        if not obs.enabled:
            return routine(*args)
        obs.metrics.inc("am.calls")
        obs.metrics.inc("am.calls." + slot)
        with obs.span("am." + slot, am=am.name):
            return routine(*args)

    def _descriptor(self, info: IndexInfo, session) -> IndexDescriptor:
        """The per-index ``td``; created once, refreshed per call."""
        if info.descriptor is None:
            table = self.server.catalog.get_table(info.table_name)
            info.descriptor = IndexDescriptor(
                index_name=info.name,
                table_name=info.table_name,
                columns=info.columns,
                column_types=tuple(
                    table.column(c).type_name for c in info.columns
                ),
                am_name=info.am_name,
                opclass_names=info.opclass_names,
                space_name=info.space_name,
                parameters=dict(info.parameters),
            )
        info.descriptor.server = self.server
        info.descriptor.session = session
        return info.descriptor

    def estimate_scan_cost(self, info: IndexInfo, qualification) -> float:
        """``am_scancost`` when provided, else an optimistic default."""
        am = self.server.catalog.access_methods.get(info.am_name)
        session = self.server.system_session
        td = self._descriptor(info, session)
        if am.has("am_scancost"):
            sd = ScanDescriptor(td, qualification)
            cost = self.call_purpose(am, "am_scancost", sd)
            if cost is not None:
                return float(cost)
        return 2.0

    def _indexed_row(self, info: IndexInfo, row: Dict[str, Any]) -> Tuple[Any, ...]:
        return tuple(row[c] for c in info.columns)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def _create_table(self, stmt: ast.CreateTable, session) -> str:
        columns = [
            Column(name, self.server.catalog.types.get(type_name))
            for name, type_name in stmt.columns
        ]
        self.server.catalog.create_table(Table(stmt.name, columns))
        return f"table {stmt.name} created"

    def _drop_table(self, stmt: ast.DropTable, session) -> str:
        self.server.catalog.drop_table(stmt.name)
        return f"table {stmt.name} dropped"

    def _create_function(self, stmt: ast.CreateFunction, session) -> str:
        fn = self.server.library.resolve_external(stmt.external_name)
        self.server.catalog.routines.register(
            Routine(
                name=stmt.name,
                arg_types=tuple(t.upper() for t in stmt.arg_types),
                return_type=stmt.return_type.upper(),
                fn=fn,
                external_name=stmt.external_name,
                language=stmt.language,
                negator=stmt.negator,
                commutator=stmt.commutator,
            )
        )
        # A new overload may shadow a cached purpose-routine resolution.
        self.server.catalog.access_methods.clear_resolution_caches()
        return f"function {stmt.name} created"

    def _drop_function(self, stmt: ast.DropFunction, session) -> str:
        removed = self.server.catalog.routines.unregister(stmt.name)
        if not removed:
            raise CatalogError(f"no function {stmt.name}")
        self.server.catalog.access_methods.clear_resolution_caches()
        return f"function {stmt.name} dropped"

    def _create_access_method(self, stmt: ast.CreateAccessMethod, session) -> str:
        for slot, function_name in stmt.slots.items():
            if not self.server.catalog.routines.exists(function_name):
                raise CatalogError(
                    f"purpose function {function_name} for slot {slot} "
                    "is not a registered function"
                )
        am = SecondaryAccessMethod(
            name=stmt.name,
            purpose_functions=dict(stmt.slots),
            sptype=SpaceType(stmt.sptype.upper()),
        )
        self.server.catalog.access_methods.register(am)
        return f"secondary access method {stmt.name} created"

    def _drop_access_method(self, stmt: ast.DropAccessMethod, session) -> str:
        self.server.catalog.access_methods.unregister(stmt.name)
        return f"secondary access method {stmt.name} dropped"

    def _create_opclass(self, stmt: ast.CreateOpclass, session) -> str:
        am = self.server.catalog.access_methods.get(stmt.am_name)
        for name in stmt.strategies + stmt.supports:
            if not self.server.catalog.routines.exists(name):
                raise CatalogError(
                    f"operator-class function {name} is not registered"
                )
        opclass = OperatorClass(stmt.name, am.name, stmt.strategies, stmt.supports)
        self.server.catalog.opclasses.register(opclass)
        if stmt.default or am.default_opclass is None:
            am.default_opclass = opclass.name
        return f"operator class {stmt.name} created"

    def _drop_opclass(self, stmt: ast.DropOpclass, session) -> str:
        self.server.catalog.opclasses.unregister(stmt.name)
        return f"operator class {stmt.name} dropped"

    def _create_index(self, stmt: ast.CreateIndex, session) -> str:
        table = self.server.catalog.get_table(stmt.table)
        if stmt.am_name is None:
            raise SqlError(
                "CREATE INDEX requires USING <access method> "
                "(only virtual indices exist in the reproduction)"
            )
        am = self.server.catalog.access_methods.get(stmt.am_name)
        columns: List[str] = []
        opclasses: List[str] = []
        for column_name, opclass_name in stmt.columns:
            column = table.column(column_name)
            columns.append(column.name)
            if opclass_name is None:
                if am.default_opclass is None:
                    raise CatalogError(
                        f"access method {am.name} has no default operator class"
                    )
                opclass_name = am.default_opclass
            opclass = self.server.catalog.opclasses.get(opclass_name)
            if opclass.am_name.lower() != am.name.lower():
                raise CatalogError(
                    f"operator class {opclass.name} belongs to "
                    f"{opclass.am_name}, not {am.name}"
                )
            opclasses.append(opclass.name)
        space = stmt.space or self.server.default_space_name(am)
        info = IndexInfo(
            name=stmt.name,
            table_name=table.name,
            columns=tuple(columns),
            am_name=am.name,
            opclass_names=tuple(opclasses),
            space_name=space,
            parameters=dict(stmt.parameters),
        )
        self.server.catalog.create_index(info)
        td = self._descriptor(info, session)
        try:
            with session.autocommit():
                self.call_purpose(am, "am_create", td)
                self.call_purpose(am, "am_open", td)
                try:
                    for rowid, row in table.scan():
                        self.call_purpose(
                            am, "am_insert", td, self._indexed_row(info, row), rowid
                        )
                finally:
                    self.call_purpose(am, "am_close", td)
        except Exception:
            self.server.catalog.drop_index(stmt.name)
            raise
        return f"index {stmt.name} created"

    def _drop_index(self, stmt: ast.DropIndex, session) -> str:
        info = self.server.catalog.get_index(stmt.name)
        am = self.server.catalog.access_methods.get(info.am_name)
        td = self._descriptor(info, session)
        with session.autocommit():
            self.call_purpose(am, "am_drop", td)
        self.server.catalog.drop_index(stmt.name)
        return f"index {stmt.name} dropped"

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def _insert(self, stmt: ast.Insert, session) -> int:
        table = self.server.catalog.get_table(stmt.table)
        column_names = stmt.columns or table.column_names()
        if len(column_names) != len(stmt.values):
            raise SqlError(
                f"INSERT has {len(stmt.values)} values for "
                f"{len(column_names)} columns"
            )
        values: Dict[str, Any] = {}
        for name, literal in zip(column_names, stmt.values):
            column = table.column(name)
            values[column.name] = (
                column.data_type.input(literal.text)
                if literal.is_string
                else literal.python_value
            )
        with session.autocommit():
            rowid = table.insert_row(values)
            row = table.fetch(rowid)
            self._log_row(session, "insert", table, rowid, row)
            for info in self.server.catalog.indices_on(table.name):
                am = self.server.catalog.access_methods.get(info.am_name)
                td = self._descriptor(info, session)
                # Figure 6(a): am_open, am_insert, am_close.
                self.call_purpose(am, "am_open", td)
                try:
                    self.call_purpose(
                        am, "am_insert", td, self._indexed_row(info, row), rowid
                    )
                finally:
                    self.call_purpose(am, "am_close", td)
        return 1

    def _select(self, stmt: ast.Select, session) -> List[Dict[str, Any]]:
        table = self.server.catalog.get_table(stmt.table)
        projection = (
            table.column_names()
            if stmt.columns == ["*"]
            else [table.column(c).name for c in stmt.columns]
        )
        self._check_staleness(session)
        with session.autocommit():
            rows = self._scan_rows(table, stmt.where, session)
            return [
                {name: row[name] for name in projection} for _, row in rows
            ]

    def _scan_rows(
        self, table: Table, where: Optional[ast.Expr], session
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """Produce qualifying (rowid, row) pairs via the chosen plan."""
        obs = self.server.obs
        if obs.enabled:
            with obs.span("plan.choose", table=table.name) as span:
                plan = choose_plan(self.server, table, where)
                span.attrs["plan"] = type(plan).__name__
                if not isinstance(plan, SeqScanPlan):
                    span.attrs["index"] = plan.index.name
            obs.metrics.inc(
                "plan.seqscan"
                if isinstance(plan, SeqScanPlan)
                else "plan.indexscan"
            )
        else:
            plan = choose_plan(self.server, table, where)
        self.server.last_plan = plan
        results: List[Tuple[int, Dict[str, Any]]] = []
        if isinstance(plan, SeqScanPlan):
            for rowid, row in table.scan():
                if plan.residual is None or self._evaluate(
                    plan.residual, row, table
                ):
                    results.append((rowid, dict(row)))
            return results
        # Figure 6(b): am_open, am_beginscan, am_getnext*, am_endscan,
        # am_close.
        info, am, td = self._open_index(plan.index, session)
        sd = ScanDescriptor(td, plan.qualification)
        self.call_purpose(am, "am_beginscan", sd)
        try:
            while True:
                ref = self.call_purpose(am, "am_getnext", sd)
                if ref is None:
                    break
                row = table.fetch(ref.rowid)
                table.pages_read += 1  # base-table page fetch
                if plan.residual is None or self._evaluate(
                    plan.residual, row, table
                ):
                    results.append((ref.rowid, dict(row)))
        finally:
            self.call_purpose(am, "am_endscan", sd)
            self.call_purpose(am, "am_close", td)
        return results

    def _open_index(self, info: IndexInfo, session):
        am = self.server.catalog.access_methods.get(info.am_name)
        td = self._descriptor(info, session)
        self.call_purpose(am, "am_open", td)
        return info, am, td

    def _delete(self, stmt: ast.Delete, session) -> int:
        table = self.server.catalog.get_table(stmt.table)
        with session.autocommit():
            victims = self._scan_rows(table, stmt.where, session)
            indices = [
                (info, *self._open_index(info, session)[1:])
                for info in self.server.catalog.indices_on(table.name)
            ]
            try:
                for rowid, row in victims:
                    table.delete_row(rowid)
                    self._log_row(session, "delete", table, rowid)
                    for info, am, td in indices:
                        self.call_purpose(
                            am,
                            "am_delete",
                            td,
                            self._indexed_row(info, row),
                            rowid,
                        )
            finally:
                for info, am, td in indices:
                    self.call_purpose(am, "am_close", td)
        return len(victims)

    def _update(self, stmt: ast.Update, session) -> int:
        table = self.server.catalog.get_table(stmt.table)
        changes: Dict[str, Any] = {}
        for name, literal in stmt.assignments:
            column = table.column(name)
            changes[column.name] = (
                column.data_type.input(literal.text)
                if literal.is_string
                else literal.python_value
            )
        with session.autocommit():
            victims = self._scan_rows(table, stmt.where, session)
            indices = [
                (info, *self._open_index(info, session)[1:])
                for info in self.server.catalog.indices_on(table.name)
            ]
            try:
                for rowid, _ in victims:
                    old, new = table.update_row(rowid, changes)
                    self._log_row(session, "update", table, rowid, new)
                    for info, am, td in indices:
                        old_key = self._indexed_row(info, old)
                        new_key = self._indexed_row(info, new)
                        if old_key != new_key:
                            self.call_purpose(
                                am, "am_update", td, old_key, rowid, new_key, rowid
                            )
            finally:
                for info, am, td in indices:
                    self.call_purpose(am, "am_close", td)
        return len(victims)

    # ------------------------------------------------------------------
    # LOAD / UNLOAD (text-file import/export support functions)
    # ------------------------------------------------------------------

    def _load(self, stmt: ast.Load, session) -> int:
        """Bulk-load rows from a delimited text file; each field goes
        through its column type's *import* support function.

        Indexes are opened once per LOAD, not once per row (the same
        batching ``_delete``/``_update`` use): am_open/am_close bracket
        the statement, which is what makes LOAD the bulk path rather
        than sugar over per-row INSERTs.
        """
        table = self.server.catalog.get_table(stmt.table)
        loaded = 0
        with open(stmt.path, "r", encoding="utf-8") as handle:
            with session.autocommit():
                indices = [
                    (info, *self._open_index(info, session)[1:])
                    for info in self.server.catalog.indices_on(table.name)
                ]
                try:
                    for line_no, raw in enumerate(handle, start=1):
                        line = raw.rstrip("\n")
                        if not line:
                            continue
                        fields = line.split(stmt.delimiter)
                        if len(fields) != len(table.columns):
                            raise ExecutionError(
                                f"{stmt.path}:{line_no}: expected "
                                f"{len(table.columns)} fields, got {len(fields)}"
                            )
                        values = {
                            column.name: column.data_type.import_text(field)
                            for column, field in zip(table.columns, fields)
                        }
                        rowid = table.insert_row(values)
                        row = table.fetch(rowid)
                        self._log_row(session, "insert", table, rowid, row)
                        for info, am, td in indices:
                            self.call_purpose(
                                am, "am_insert", td,
                                self._indexed_row(info, row), rowid,
                            )
                        loaded += 1
                finally:
                    for info, am, td in indices:
                        self.call_purpose(am, "am_close", td)
        return loaded

    def _unload(self, stmt: ast.Unload, session) -> int:
        """Write query results to a delimited text file via each column
        type's *export* support function."""
        table = self.server.catalog.get_table(stmt.select.table)
        rows = self._select(stmt.select, session)
        projection = (
            table.column_names()
            if stmt.select.columns == ["*"]
            else [table.column(c).name for c in stmt.select.columns]
        )
        with open(stmt.path, "w", encoding="utf-8") as handle:
            for row in rows:
                fields = [
                    table.column(name).data_type.export_text(row[name])
                    for name in projection
                ]
                handle.write(stmt.delimiter.join(fields) + "\n")
        return len(rows)

    # ------------------------------------------------------------------
    # Transactions and utilities
    # ------------------------------------------------------------------

    def _begin(self, stmt: ast.BeginWork, session) -> str:
        session.begin(explicit=True)
        return "transaction started"

    def _commit(self, stmt: ast.CommitWork, session) -> str:
        session.commit()
        return "transaction committed"

    def _rollback(self, stmt: ast.RollbackWork, session) -> str:
        session.rollback()
        return "transaction rolled back"

    def _set_isolation(self, stmt: ast.SetIsolation, session) -> str:
        from repro.storage.locks import IsolationLevel

        wanted = stmt.level.strip().lower()
        for level in IsolationLevel:
            if level.value == wanted:
                session.isolation = level
                return f"isolation set to {level.value}"
        raise SqlError(f"unknown isolation level: {stmt.level!r}")

    def _check_index(self, stmt: ast.CheckIndex, session) -> str:
        info = self.server.catalog.get_index(stmt.name)
        am = self.server.catalog.access_methods.get(info.am_name)
        td = self._descriptor(info, session)
        with session.autocommit():
            self.call_purpose(am, "am_open", td)
            try:
                self.call_purpose(am, "am_check", td)
            finally:
                self.call_purpose(am, "am_close", td)
        return f"index {stmt.name} is consistent"

    def _update_statistics(self, stmt: ast.UpdateStatistics, session) -> Any:
        info = self.server.catalog.get_index(stmt.index_name)
        am = self.server.catalog.access_methods.get(info.am_name)
        td = self._descriptor(info, session)
        with session.autocommit():
            self.call_purpose(am, "am_open", td)
            try:
                return self.call_purpose(am, "am_stats", td)
            finally:
                self.call_purpose(am, "am_close", td)

    # ------------------------------------------------------------------
    # Observability inspection (the onstat-style SQL surface)
    # ------------------------------------------------------------------

    def _show_stats(self, stmt: ast.ShowStats, session) -> str:
        obs = self.server.obs
        if stmt.format == "json":
            return json.dumps(
                obs.to_dict(), indent=2, sort_keys=True, default=str
            )
        return obs.report()

    def _show_spans(self, stmt: ast.ShowSpans, session) -> str:
        obs = self.server.obs
        if stmt.format == "json":
            return json.dumps(
                obs.spans.to_dicts(
                    connection=stmt.connection, limit=stmt.limit
                ),
                indent=2,
                sort_keys=True,
                default=str,
            )
        return obs.spans.format_trees(
            limit=stmt.limit, connection=stmt.connection
        )

    def _show_trace(self, stmt: ast.ShowTrace, session) -> str:
        obs = self.server.obs
        if stmt.format == "json":
            return json.dumps(
                obs.spans.to_dicts(trace_id=stmt.trace_id),
                indent=2,
                sort_keys=True,
                default=str,
            )
        rendered = obs.spans.format_trees(trace_id=stmt.trace_id)
        if rendered == "(no spans recorded)":
            return f"(no spans recorded for trace {stmt.trace_id})"
        return rendered

    def _show_workload(self, stmt: ast.ShowWorkload, session) -> str:
        workload = self.server.obs.workload
        try:
            if stmt.format == "json":
                return json.dumps(
                    workload.to_dict(stmt.top, stmt.by),
                    indent=2,
                    sort_keys=True,
                    default=str,
                )
            return workload.report(
                stmt.top if stmt.top is not None else 20, stmt.by
            )
        except ValueError as exc:
            raise SqlError(str(exc)) from None

    def _show_events(self, stmt: ast.ShowEvents, session) -> str:
        events = self.server.obs.events
        if stmt.format == "json":
            return json.dumps(
                events.to_dicts(stmt.limit),
                indent=2,
                sort_keys=True,
                default=str,
            )
        return events.report(stmt.limit if stmt.limit is not None else 20)

    def _set_slow_query_threshold(
        self, stmt: ast.SetSlowQueryThreshold, session
    ) -> str:
        self.server.obs.events.slow_query_threshold_ms = stmt.ms
        if stmt.ms is None:
            return "slow query logging off"
        return f"slow query threshold set to {stmt.ms:g} ms"

    def _set_trace_class(self, stmt: ast.SetTraceClass, session) -> str:
        self.server.trace.set_level(stmt.trace_class, stmt.level)
        return f"trace class {stmt.trace_class} set to level {stmt.level}"

    def _set_fault(self, stmt: ast.SetFault, session) -> str:
        registry = self.server.ensure_faults()
        if stmt.action == "off":
            if stmt.name is None:
                registry.clear_all()
                return "all faults cleared"
            registry.clear_fault(stmt.name)
            return f"fault '{stmt.name}' cleared"
        try:
            point = registry.set_fault(
                stmt.name,
                stmt.action,
                hit=stmt.hit,
                probability=stmt.probability,
                times=stmt.times,
                seed=stmt.seed,
            )
        except ValueError as exc:
            raise SqlError(str(exc)) from None
        return f"fault '{stmt.name}' armed: {point.describe()}"

    def _show_replicas(self, stmt: ast.ShowReplicas, session) -> Any:
        rows = self.server.replication_status()
        if stmt.fmt == "json":
            return json.dumps(rows, indent=2, sort_keys=True, default=str)
        return rows

    def _set_read_staleness(self, stmt: ast.SetReadStaleness, session) -> str:
        if stmt.mode is None:
            session.read_staleness = None
            return "read staleness bound off"
        session.read_staleness = (stmt.mode, stmt.value)
        if stmt.mode == "lsn":
            return f"read staleness bound set to {int(stmt.value)} records"
        return f"read staleness bound set to {stmt.value:g} ms"

    # ------------------------------------------------------------------
    # Expression evaluation on rows (seqscan and residual filters)
    # ------------------------------------------------------------------

    def _evaluate(self, expr: ast.Expr, row: Dict[str, Any], table: Table) -> bool:
        if isinstance(expr, ast.And):
            return all(self._evaluate(c, row, table) for c in expr.children)
        if isinstance(expr, ast.Or):
            return any(self._evaluate(c, row, table) for c in expr.children)
        if isinstance(expr, ast.Not):
            return not self._evaluate(expr.child, row, table)
        if isinstance(expr, ast.Comparison):
            return self._evaluate_comparison(expr, row, table)
        if isinstance(expr, ast.FunctionCall):
            return bool(self._invoke_udr(expr, row, table))
        raise ExecutionError(f"cannot evaluate expression {expr!r}")

    def _evaluate_comparison(
        self, cmp: ast.Comparison, row: Dict[str, Any], table: Table
    ) -> bool:
        left = self._value_of(cmp.left, cmp.right, row, table)
        right = self._value_of(cmp.right, cmp.left, row, table)
        if cmp.op == "=":
            return left == right
        if cmp.op == "<>":
            return left != right
        if cmp.op == "<":
            return left < right
        if cmp.op == "<=":
            return left <= right
        if cmp.op == ">":
            return left > right
        if cmp.op == ">=":
            return left >= right
        raise ExecutionError(f"unknown comparison operator {cmp.op}")

    def _value_of(self, side, other_side, row: Dict[str, Any], table: Table):
        if isinstance(side, ast.ColumnRef):
            return row[table.column(side.name).name]
        # Literal: coerce through the opposite column's type if present.
        if isinstance(other_side, ast.ColumnRef) and side.is_string:
            return table.column(other_side.name).data_type.input(side.text)
        return side.python_value

    def _invoke_udr(
        self, call: ast.FunctionCall, row: Dict[str, Any], table: Table
    ) -> Any:
        """Run a strategy function as an ordinary UDR against one row."""
        registry = self.server.catalog.routines
        overloads = registry.overloads(call.name)
        if not overloads:
            raise ExecutionError(f"no function named {call.name}")
        candidates = [r for r in overloads if len(r.arg_types) == len(call.args)]
        routine = self._pick_overload(candidates, call, table)
        args = []
        for arg, declared in zip(call.args, routine.arg_types):
            if isinstance(arg, ast.ColumnRef):
                args.append(row[table.column(arg.name).name])
            elif arg.is_string:
                args.append(self.server.catalog.types.get(declared).input(arg.text))
            else:
                args.append(arg.python_value)
        registry.resolutions += 1
        registry.invocations += 1
        return routine(*args)

    def _pick_overload(
        self, candidates: List[Routine], call: ast.FunctionCall, table: Table
    ) -> Routine:
        if not candidates:
            raise ExecutionError(
                f"no overload of {call.name} takes {len(call.args)} arguments"
            )
        if len(candidates) == 1:
            return candidates[0]
        # Disambiguate by the column argument types.
        for routine in candidates:
            ok = True
            for arg, declared in zip(call.args, routine.arg_types):
                if isinstance(arg, ast.ColumnRef):
                    if table.column(arg.name).type_name != declared.upper():
                        ok = False
                        break
            if ok:
                return routine
        raise ExecutionError(f"ambiguous call to {call.name}")

    _HANDLERS = {
        ast.CreateTable: _create_table,
        ast.DropTable: _drop_table,
        ast.CreateFunction: _create_function,
        ast.DropFunction: _drop_function,
        ast.CreateAccessMethod: _create_access_method,
        ast.DropAccessMethod: _drop_access_method,
        ast.CreateOpclass: _create_opclass,
        ast.DropOpclass: _drop_opclass,
        ast.CreateIndex: _create_index,
        ast.DropIndex: _drop_index,
        ast.Insert: _insert,
        ast.Select: _select,
        ast.Delete: _delete,
        ast.Update: _update,
        ast.BeginWork: _begin,
        ast.CommitWork: _commit,
        ast.RollbackWork: _rollback,
        ast.SetIsolation: _set_isolation,
        ast.CheckIndex: _check_index,
        ast.UpdateStatistics: _update_statistics,
        ast.Load: _load,
        ast.Unload: _unload,
        ast.ShowStats: _show_stats,
        ast.ShowSpans: _show_spans,
        ast.ShowTrace: _show_trace,
        ast.ShowWorkload: _show_workload,
        ast.ShowEvents: _show_events,
        ast.SetTraceClass: _set_trace_class,
        ast.SetFault: _set_fault,
        ast.SetSlowQueryThreshold: _set_slow_query_threshold,
        ast.ShowReplicas: _show_replicas,
        ast.SetReadStaleness: _set_read_staleness,
    }
