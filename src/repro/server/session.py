"""Sessions, transactions, and transaction-end callbacks (Section 5.4).

A DataBlade cannot observe a transaction *begin* -- "the DataBlade API
does not provide means of capturing a transaction-begin event" -- but it
can register a callback that fires at transaction end, which is how the
GR-tree blade frees the named memory holding its sampled current time.

Statements run inside a transaction: an explicit ``BEGIN WORK`` one, or a
single-statement autocommit transaction the server wraps around the
statement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.faults import SimulatedCrash
from repro.server.errors import TransactionError
from repro.server.memory import Duration
from repro.storage.locks import IsolationLevel

#: A transaction-end callback: ``fn(session, committed: bool)``.
EndCallback = Callable[["Session", bool], None]


class Transaction:
    def __init__(self, txn_id: int, explicit: bool) -> None:
        self.txn_id = txn_id
        self.explicit = explicit
        self.end_callbacks: List[EndCallback] = []
        #: Deferred work (e.g. large-object drops that must survive abort).
        self.on_commit_actions: List[Callable[[], None]] = []


class Session:
    """One client connection: isolation level + transaction state."""

    _ids = itertools.count(1)

    def __init__(self, server) -> None:
        self.server = server
        self.session_id = next(Session._ids)
        self.isolation = IsolationLevel.COMMITTED_READ
        self.transaction: Optional[Transaction] = None
        #: Set by the serving layer (``repro.net``) when this session is
        #: bound to a network connection; tagged onto statement spans.
        self.connection_id: Optional[int] = None
        #: Distributed-trace context propagated by the wire client for
        #: the *current* statement; stamped onto its root span so the
        #: client, server, and storage spans stitch into one trace.
        self.trace_id: Optional[str] = None
        self.parent_span_id: Optional[int] = None
        #: The root span of this session's most recent statement -- the
        #: serving layer reads it to build ``explain_profile`` replies.
        self.last_root_span = None
        #: Replica staleness bound: ``("ms", n)``/``("lsn", n)`` set by
        #: ``SET READ STALENESS``; ``None`` means any lag is acceptable.
        self.read_staleness: Optional[tuple] = None

    # ------------------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self.transaction is not None

    def begin(self, explicit: bool = True) -> Transaction:
        if self.transaction is not None:
            raise TransactionError("transaction already in progress")
        txn_id = self.server.next_txn_id()
        self.transaction = Transaction(txn_id, explicit)
        self.server.wal.log_begin(txn_id)
        self.server.bind_transaction(self, txn_id)
        return self.transaction

    def register_end_callback(self, callback: EndCallback) -> None:
        """The DataBlade API's transaction-end callback registration."""
        if self.transaction is None:
            raise TransactionError("no transaction to register a callback on")
        self.transaction.end_callbacks.append(callback)

    def on_commit(self, action: Callable[[], None]) -> None:
        if self.transaction is None:
            raise TransactionError("no transaction in progress")
        self.transaction.on_commit_actions.append(action)

    def commit(self) -> None:
        txn = self._require_transaction()
        for action in txn.on_commit_actions:
            action()
        self.server.wal.log_commit(txn.txn_id)
        self._finish(txn, committed=True)

    def rollback(self) -> None:
        txn = self._require_transaction()
        self.server.rollback_storage(txn.txn_id)
        self.server.wal.log_abort(txn.txn_id)
        self._finish(txn, committed=False)

    def _require_transaction(self) -> Transaction:
        if self.transaction is None:
            raise TransactionError("no transaction in progress")
        return self.transaction

    def _finish(self, txn: Transaction, committed: bool) -> None:
        self.transaction = None
        self.server.release_transaction(self, txn.txn_id)
        for callback in txn.end_callbacks:
            callback(self, committed)
        self.server.memory.end_duration(Duration.PER_TRANSACTION)

    # ------------------------------------------------------------------

    def autocommit(self):
        """Context manager wrapping a statement in a transaction if none
        is open (commit on success, roll back on error)."""
        return _Autocommit(self)


class _Autocommit:
    def __init__(self, session: Session) -> None:
        self.session = session
        self.started = False

    def __enter__(self) -> Session:
        if not self.session.in_transaction:
            self.session.begin(explicit=False)
            self.started = True
        return self.session

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.started:
            return
        if exc_type is not None and issubclass(exc_type, SimulatedCrash):
            # The engine "died" mid-statement: a real crash never gets
            # to run rollback, so neither does a simulated one.  All
            # volatile state stays frozen; the crash-consistency harness
            # recovers from the WAL instead.
            return
        if exc_type is None:
            self.session.commit()
        else:
            self.session.rollback()
