"""The extensible DBMS substrate ("mini-Informix").

This subpackage rebuilds the machinery the paper's DataBlade plugs into:
system catalogs, a type system with *opaque* user-defined types, a
user-defined-routine (UDR) registry, *secondary access methods* defined by
purpose functions, *operator classes* binding strategy and support
functions to an access method, descriptors (index, scan, qualification),
an optimizer that decides when a virtual index applies, and a small SQL
front end covering every statement the paper shows.
"""

from repro.server.errors import (
    AccessMethodError,
    CatalogError,
    DataTypeError,
    ExecutionError,
    ServerError,
    SqlError,
    TransactionError,
    UdrError,
)
from repro.server.server import DatabaseServer

__all__ = [
    "AccessMethodError",
    "CatalogError",
    "DataTypeError",
    "ExecutionError",
    "ServerError",
    "SqlError",
    "TransactionError",
    "UdrError",
    "DatabaseServer",
]
