"""The B+-tree access method (``btree_am``) and its operator classes.

Unlike the GR-tree blade (which hard-codes everything, Section 5.2),
this blade resolves its ``Compare`` *support function* dynamically
through the operator class named at ``CREATE INDEX`` time -- so a second
operator class with a redefined comparator changes the order of an
index without touching a single purpose function, exactly the
extensibility story of Step 4.

Keys are the column type's binary ``send()`` representation; the
comparator UDR receives the *decoded* values.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.btree.node import BTreeNodeStore
from repro.btree.tree import BPlusTree
from repro.datablade.blob import BladeBlob
from repro.server.access_method import (
    BooleanOperator,
    CompoundQualification,
    IndexDescriptor,
    Qualification,
    RowReference,
    ScanDescriptor,
    SimpleQualification,
)
from repro.server.errors import AccessMethodError
from repro.storage.buffer import BufferPool
from repro.storage.sbspace import LargeObjectHandle, OpenMode

_META = struct.Struct("<4sqqq")
_META_MAGIC = b"BTB1"

#: Strategy name -> (low, high, low_inclusive, high_inclusive) template,
#: with `K` standing for the constant key.
_RANGES = {
    "equal": ("K", "K", True, True),
    "greaterthan": ("K", None, False, True),
    "greaterthanorequal": ("K", None, True, True),
    "lessthan": (None, "K", True, False),
    "lessthanorequal": (None, "K", True, True),
}

#: Commuted strategy when the constant is the first argument:
#: GreaterThan(c, col) means col < c, and so on.
_COMMUTED = {
    "equal": "equal",
    "greaterthan": "lessthan",
    "greaterthanorequal": "lessthanorequal",
    "lessthan": "greaterthan",
    "lessthanorequal": "greaterthanorequal",
}


class BTreeDataBlade:
    LIBRARY_PATH = "usr/functions/btree.bld"
    AM_NAME = "btree_am"
    OPCLASS_NAME = "btree_ops"
    METADATA_TABLE = "btree_indexdata"

    def __init__(self, server, buffer_capacity: int = 64) -> None:
        self.server = server
        self.buffer_capacity = buffer_capacity

    # ------------------------------------------------------------------
    # Key codec and dynamic comparator resolution
    # ------------------------------------------------------------------

    def _key_type(self, td: IndexDescriptor):
        return self.server.catalog.types.get(td.column_types[0])

    def _comparator(self, td: IndexDescriptor):
        """Resolve the opclass's Compare support function dynamically --
        the non-hard-coded design of Section 5.2."""
        opclass = self.server.catalog.opclasses.get(td.opclass_names[0])
        compare_name = None
        for name in opclass.supports:
            if "compare" in name.lower():
                compare_name = name
                break
        if compare_name is None:
            raise AccessMethodError(
                f"operator class {opclass.name} declares no Compare support"
            )
        key_type = self._key_type(td)
        type_name = key_type.name
        routines = self.server.catalog.routines

        def compare(a: bytes, b: bytes) -> int:
            routine = routines.resolve(compare_name, (type_name, type_name))
            routines.invocations += 1
            return routine(key_type.receive(a), key_type.receive(b))

        return compare

    # ------------------------------------------------------------------
    # Purpose functions
    # ------------------------------------------------------------------

    def bt_create(self, td: IndexDescriptor) -> int:
        if len(td.columns) != 1:
            raise AccessMethodError(f"{self.AM_NAME} indexes exactly one column")
        space = self.server.get_sbspace(td.space_name)
        blob = BladeBlob.create(space)
        self.server.catalog.get_table(self.METADATA_TABLE).insert_row(
            {"indexname": td.index_name, "blobhandle": blob.handle.value}
        )
        blob.open(td.session, OpenMode.WRITE)
        pool = BufferPool(blob.page_store(), capacity=self.buffer_capacity)
        meta_page = pool.allocate()
        tree = BPlusTree(BTreeNodeStore(pool), self._comparator(td))
        td.user_data.update(
            {"tree": tree, "blob": blob, "pool": pool, "meta_page": meta_page}
        )
        return 0

    def bt_open(self, td: IndexDescriptor) -> int:
        if "tree" in td.user_data:
            return 0
        meta_table = self.server.catalog.get_table(self.METADATA_TABLE)
        handle_text = None
        for _, row in meta_table.scan():
            if row["indexname"] == td.index_name:
                handle_text = row["blobhandle"]
                break
        if handle_text is None:
            raise AccessMethodError(f"no metadata for index {td.index_name}")
        space = self.server.get_sbspace(td.space_name)
        blob = BladeBlob(space, LargeObjectHandle(handle_text))
        blob.open(td.session, OpenMode.READ)
        pool = BufferPool(blob.page_store(), capacity=self.buffer_capacity)
        magic, root_id, height, size = _META.unpack_from(pool.read(0), 0)
        if magic != _META_MAGIC:
            raise AccessMethodError(f"index {td.index_name} storage is corrupt")
        tree = BPlusTree(
            BTreeNodeStore(pool), self._comparator(td),
            root_id=root_id, height=height, size=size,
        )
        td.user_data.update(
            {"tree": tree, "blob": blob, "pool": pool, "meta_page": 0}
        )
        return 0

    def bt_close(self, td: IndexDescriptor) -> int:
        tree: BPlusTree = td.user_data["tree"]
        pool: BufferPool = td.user_data["pool"]
        blob: BladeBlob = td.user_data["blob"]
        if blob._open_mode is OpenMode.WRITE:
            pool.write(
                td.user_data["meta_page"],
                _META.pack(_META_MAGIC, tree.root_id, tree.height, tree.size),
            )
        pool.flush()
        blob.close()
        td.user_data.clear()
        return 0

    def bt_drop(self, td: IndexDescriptor) -> int:
        if "tree" not in td.user_data:
            self.bt_open(td)
        td.user_data["blob"].drop()
        td.user_data.clear()
        meta_table = self.server.catalog.get_table(self.METADATA_TABLE)
        for rowid, row in meta_table.scan():
            if row["indexname"] == td.index_name:
                meta_table.delete_row(rowid)
                break
        return 0

    # -- scanning ------------------------------------------------------

    def bt_beginscan(self, sd: ScanDescriptor) -> int:
        if sd.qualification is None:
            raise AccessMethodError("bt_beginscan needs a qualification")
        tree: BPlusTree = sd.index.user_data["tree"]
        key_type = self._key_type(sd.index)
        branches = self._to_dnf(sd.qualification)
        sd.user_data["scan"] = _BScan(tree, key_type, branches)
        return 0

    def bt_rescan(self, sd: ScanDescriptor) -> int:
        sd.user_data["scan"].reset()
        return 0

    def bt_getnext(self, sd: ScanDescriptor) -> Optional[RowReference]:
        return sd.user_data["scan"].next()

    def bt_endscan(self, sd: ScanDescriptor) -> int:
        sd.user_data.pop("scan", None)
        return 0

    # -- updates ----------------------------------------------------------

    def bt_insert(self, td: IndexDescriptor, newrow, newrowid: int) -> int:
        td.user_data["blob"].ensure_writable()
        key = self._key_type(td).send(newrow[0])
        td.user_data["tree"].insert(key, newrowid)
        return 0

    def bt_delete(self, td: IndexDescriptor, oldrow, oldrowid: int) -> int:
        td.user_data["blob"].ensure_writable()
        key = self._key_type(td).send(oldrow[0])
        if not td.user_data["tree"].delete(key, oldrowid):
            raise AccessMethodError(
                f"index {td.index_name} has no entry for rowid {oldrowid}"
            )
        return 0

    def bt_update(self, td, oldrow, oldrowid: int, newrow, newrowid: int) -> int:
        self.bt_delete(td, oldrow, oldrowid)
        self.bt_insert(td, newrow, newrowid)
        return 0

    def bt_scancost(self, sd: ScanDescriptor) -> float:
        tree = sd.index.user_data.get("tree")
        height = tree.height if tree is not None else 2
        return float(height + len(self._to_dnf(sd.qualification)))

    def bt_stats(self, td: IndexDescriptor) -> Dict[str, float]:
        return td.user_data["tree"].stats()

    def bt_check(self, td: IndexDescriptor) -> int:
        try:
            td.user_data["tree"].check()
        except AssertionError as exc:
            raise AccessMethodError(f"index {td.index_name} corrupt: {exc}") from exc
        return 0

    # -- qualification handling ------------------------------------------

    def _to_dnf(self, qual: Qualification):
        if isinstance(qual, SimpleQualification):
            name = qual.function.lower()
            if name.startswith("bt_"):
                name = name[3:]
            if name not in _RANGES:
                raise AccessMethodError(
                    f"{qual.function} is not a B+-tree strategy function"
                )
            if qual.constant_first:
                name = _COMMUTED[name]
            return [[(name, qual.constant)]]
        assert isinstance(qual, CompoundQualification)
        child_dnfs = [self._to_dnf(c) for c in qual.children]
        if qual.operator is BooleanOperator.OR:
            return [branch for dnf in child_dnfs for branch in dnf]
        result = [[]]
        for dnf in child_dnfs:
            result = [prefix + branch for prefix in result for branch in dnf]
        return result

    # ------------------------------------------------------------------

    def exports(self) -> Dict[str, Any]:
        purpose = {
            "bt_create": self.bt_create,
            "bt_drop": self.bt_drop,
            "bt_open": self.bt_open,
            "bt_close": self.bt_close,
            "bt_beginscan": self.bt_beginscan,
            "bt_endscan": self.bt_endscan,
            "bt_rescan": self.bt_rescan,
            "bt_getnext": self.bt_getnext,
            "bt_insert": self.bt_insert,
            "bt_delete": self.bt_delete,
            "bt_update": self.bt_update,
            "bt_scancost": self.bt_scancost,
            "bt_stats": self.bt_stats,
            "bt_check": self.bt_check,
        }
        strategies = {
            "bt_equal_udr": lambda a, b: _natural(a, b) == 0,
            "bt_gt_udr": lambda a, b: _natural(a, b) > 0,
            "bt_ge_udr": lambda a, b: _natural(a, b) >= 0,
            "bt_lt_udr": lambda a, b: _natural(a, b) < 0,
            "bt_le_udr": lambda a, b: _natural(a, b) <= 0,
            "bt_compare_udr": _natural,
        }
        return {**purpose, **strategies}


def _natural(a, b) -> int:
    return (a > b) - (a < b)


class _BScan:
    """DNF scan over the B+-tree with cross-branch de-duplication."""

    def __init__(self, tree: BPlusTree, key_type, branches) -> None:
        self.tree = tree
        self.key_type = key_type
        self.branches = branches
        self.reset()

    def _bounds(self, branch):
        """Intersect the branch's range predicates into one interval."""
        low = high = None
        low_inc = high_inc = True
        for name, constant in branch:
            key = self.key_type.send(constant)
            template = _RANGES[name]
            t_low, t_high, t_low_inc, t_high_inc = template
            if t_low == "K":
                if low is None or self.tree.compare(key, low) > 0 or (
                    self.tree.compare(key, low) == 0 and not t_low_inc
                ):
                    low, low_inc = key, t_low_inc
            if t_high == "K":
                if high is None or self.tree.compare(key, high) < 0 or (
                    self.tree.compare(key, high) == 0 and not t_high_inc
                ):
                    high, high_inc = key, t_high_inc
        return low, high, low_inc, high_inc

    def reset(self) -> None:
        self._results: List[Tuple[int, int, bytes]] = []
        self._pos = 0
        seen = set()
        for branch in self.branches:
            low, high, low_inc, high_inc = self._bounds(branch)
            for key, rowid, fragid in self.tree.search_range(
                low, high, low_inc, high_inc
            ):
                if (rowid, fragid) not in seen:
                    seen.add((rowid, fragid))
                    self._results.append((rowid, fragid, key))

    def next(self) -> Optional[RowReference]:
        if self._pos >= len(self._results):
            return None
        rowid, fragid, key = self._results[self._pos]
        self._pos += 1
        return RowReference(
            rowid=rowid, fragid=fragid, row=(self.key_type.receive(key),)
        )


def register_btree_blade(server, buffer_capacity: int = 64) -> BTreeDataBlade:
    """Install the B+-tree DataBlade; indexable types: INTEGER, FLOAT,
    DATE, LVARCHAR (anything with binary send/receive and a comparator
    overload)."""
    blade = BTreeDataBlade(server, buffer_capacity=buffer_capacity)
    server.library.register_module(BTreeDataBlade.LIBRARY_PATH, blade.exports())

    statements: List[str] = []
    for symbol in (
        "bt_create", "bt_drop", "bt_open", "bt_close", "bt_beginscan",
        "bt_endscan", "bt_rescan", "bt_getnext", "bt_insert", "bt_delete",
        "bt_update", "bt_scancost", "bt_stats", "bt_check",
    ):
        statements.append(
            f"CREATE FUNCTION {symbol}(pointer) RETURNING int "
            f"EXTERNAL NAME '{blade.LIBRARY_PATH}({symbol})' LANGUAGE c"
        )
    for type_name in ("INTEGER", "FLOAT", "DATE", "LVARCHAR"):
        for name, symbol in (
            ("BT_Equal", "bt_equal_udr"),
            ("BT_GreaterThan", "bt_gt_udr"),
            ("BT_GreaterThanOrEqual", "bt_ge_udr"),
            ("BT_LessThan", "bt_lt_udr"),
            ("BT_LessThanOrEqual", "bt_le_udr"),
        ):
            statements.append(
                f"CREATE FUNCTION {name}({type_name}, {type_name}) "
                f"RETURNING boolean "
                f"EXTERNAL NAME '{blade.LIBRARY_PATH}({symbol})' LANGUAGE c"
            )
        statements.append(
            f"CREATE FUNCTION Compare({type_name}, {type_name}) "
            f"RETURNING int "
            f"EXTERNAL NAME '{blade.LIBRARY_PATH}(bt_compare_udr)' LANGUAGE c"
        )
    slots = ", ".join(
        f"am_{slot} = bt_{slot}"
        for slot in (
            "create", "drop", "open", "close", "beginscan", "endscan",
            "rescan", "getnext", "insert", "delete", "update", "scancost",
            "stats", "check",
        )
    )
    statements.append(
        f'CREATE SECONDARY ACCESS_METHOD {blade.AM_NAME} ({slots}, '
        f'am_sptype = "S")'
    )
    statements.append(
        f"CREATE DEFAULT OPCLASS {blade.OPCLASS_NAME} FOR {blade.AM_NAME} "
        f"STRATEGIES(BT_Equal, BT_GreaterThan, BT_GreaterThanOrEqual, "
        f"BT_LessThan, BT_LessThanOrEqual) "
        f"SUPPORT(Compare)"
    )
    statements.append(
        f"CREATE TABLE {blade.METADATA_TABLE} "
        f"(indexname LVARCHAR, blobhandle LVARCHAR)"
    )
    with server.provisioning():
        server.run_script(";\n".join(statements))

    routines = server.catalog.routines
    routines.set_commutator("BT_GreaterThan", "BT_LessThanOrEqual")
    routines.set_commutator("BT_LessThanOrEqual", "BT_GreaterThan")
    routines.set_negator("BT_Equal", "BT_NotEqual")
    return blade
