"""The B+-tree DataBlade: the paper's operator-class running example.

Step 4 of the paper explains operator classes with the B+-tree:
``GreaterThan()`` / ``LessThanOrEqual()`` are strategy functions, and
``compare()`` is the canonical *support* function -- registering a new
operator class with a substitute ``compare()`` re-orders the entire
index ("the natural order for integers is -2, -1, 0, 1, 2, but the
programmer may want to change this order to 0, -1, 1, -2, 2").  This
blade makes that paragraph executable: ``btree_am`` resolves its
comparator dynamically from the opclass the index was created with.
"""

from repro.bblade.blade import BTreeDataBlade, register_btree_blade

__all__ = ["BTreeDataBlade", "register_btree_blade"]
