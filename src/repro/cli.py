"""An interactive SQL shell for the reproduction server.

Usage::

    python -m repro.cli                        # interactive
    python -m repro.cli -f script.sql          # run a script and exit
    python -m repro.cli stats -f script.sql    # run a script, dump
                                               # observability data (JSON)
    python -m repro.cli serve --port 7478      # serve concurrent clients
    python -m repro.cli connect --port 7478    # remote shell over TCP
    python -m repro.cli lint --strict src      # invariant linter
                                               # (docs/static_analysis.md)

Besides SQL, the shell accepts backslash commands:

``\\install grtree|rtree|btree|gist|hblade``  register a DataBlade
``\\sbspace NAME``                     create a smart-blob space (Step 5)
``\\clock``                            show the simulated current time
``\\clock +N`` / ``\\clock set TEXT``  advance / set the clock
``\\trace CLASS LEVEL``                set a trace level (e.g. ``am 1``)
``\\messages [CLASS]``                 dump collected trace messages
``\\stats [json]``                     onstat-style metrics report
``\\spans [json] [limit N] [conn N]``  recorded statement span trees
``\\workload [json]``                  per-fingerprint workload model
``\\events [N]``                       structured event log tail
``\\faults``                           armed failpoints + the catalog
``\\catalog``                          list tables, indices, AMs, opclasses
``\\prefer on|off``                    toggle the virtual-index directive
``\\quit``                             leave
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List, Optional

from repro.faults import FaultInjected
from repro.server import DatabaseServer, ServerError
from repro.temporal.chronon import Granularity


class Shell:
    PROMPT = "repro> "

    def __init__(self, granularity: Granularity = Granularity.DAY) -> None:
        self.server = DatabaseServer(granularity=granularity)
        self.session = self.server.create_session()
        self._installed: set[str] = set()

    # ------------------------------------------------------------------

    def run_line(self, line: str, out=sys.stdout) -> None:
        line = line.strip()
        if not line:
            return
        if line.startswith("\\"):
            self._meta(line, out)
            return
        try:
            result = self.server.execute(line, self.session)
        except (ServerError, FaultInjected) as exc:
            # FaultInjected is an ordinary statement failure (the engine
            # rolled back); SimulatedCrash stays fatal on purpose.
            print(f"error: {exc}", file=out)
            return
        self._render(result, out)

    def _render(self, result: Any, out) -> None:
        if isinstance(result, list):
            if not result:
                print("(no rows)", file=out)
                return
            columns = list(result[0].keys())
            rendered = [
                {c: self._cell(row[c]) for c in columns} for row in result
            ]
            widths = {
                c: max(len(c), *(len(r[c]) for r in rendered)) for c in columns
            }
            print(" | ".join(c.ljust(widths[c]) for c in columns), file=out)
            print("-+-".join("-" * widths[c] for c in columns), file=out)
            for row in rendered:
                print(
                    " | ".join(row[c].ljust(widths[c]) for c in columns),
                    file=out,
                )
            print(f"({len(result)} row(s))", file=out)
        else:
            print(result, file=out)

    def _cell(self, value: Any) -> str:
        from repro.temporal.extent import TimeExtent

        if isinstance(value, TimeExtent):
            return value.to_text(self.server.clock.granularity)
        return str(value)

    # ------------------------------------------------------------------

    def _meta(self, line: str, out) -> None:
        parts = line[1:].split()
        command, args = parts[0].lower(), parts[1:]
        if command in ("q", "quit", "exit"):
            raise EOFError
        if command == "install":
            self._install(args[0].lower() if args else "", out)
        elif command == "sbspace":
            name = args[0] if args else "sbspace1"
            self.server.create_sbspace(name)
            print(f"sbspace {name} created", file=out)
        elif command == "clock":
            self._clock(args, out)
        elif command == "trace":
            if len(args) != 2:
                print("usage: \\trace CLASS LEVEL", file=out)
                return
            self.server.trace.set_level(args[0], int(args[1]))
            print(f"trace {args[0]} at level {args[1]}", file=out)
        elif command == "messages":
            for message in self.server.trace.messages(args[0] if args else None):
                print(str(message), file=out)
        elif command == "stats":
            if args and args[0].lower() == "json":
                print(
                    json.dumps(
                        self.server.obs.to_dict(),
                        indent=2,
                        sort_keys=True,
                        default=str,
                    ),
                    file=out,
                )
            else:
                print(self.server.obs.report(), file=out)
        elif command == "spans":
            self._spans(args, out)
        elif command == "workload":
            if args and args[0].lower() == "json":
                print(
                    json.dumps(
                        self.server.obs.workload.to_dict(),
                        indent=2,
                        sort_keys=True,
                        default=str,
                    ),
                    file=out,
                )
            else:
                print(self.server.obs.workload.report(), file=out)
        elif command == "events":
            limit = int(args[0]) if args and args[0].isdigit() else 20
            print(self.server.obs.events.report(limit), file=out)
        elif command == "faults":
            self._faults(out)
        elif command == "catalog":
            self._catalog(out)
        elif command == "prefer":
            self.server.prefer_virtual_index = bool(args) and args[0] == "on"
            print(
                f"prefer_virtual_index = {self.server.prefer_virtual_index}",
                file=out,
            )
        elif command == "help":
            print(__doc__, file=out)
        else:
            print(f"unknown command \\{command} (try \\help)", file=out)

    def _spans(self, args: List[str], out) -> None:
        """``\\spans [json] [limit N] [conn N]`` -- filtered span trees."""
        as_json = False
        limit = None
        connection = None
        index = 0
        while index < len(args):
            token = args[index].lower()
            if token == "json":
                as_json = True
                index += 1
            elif token in ("limit", "conn") and index + 1 < len(args):
                try:
                    value = int(args[index + 1])
                except ValueError:
                    print(f"\\spans: {token} wants a number", file=out)
                    return
                if token == "limit":
                    limit = value
                else:
                    connection = value
                index += 2
            else:
                print("usage: \\spans [json] [limit N] [conn N]", file=out)
                return
        spans = self.server.obs.spans
        if as_json:
            print(
                json.dumps(
                    spans.to_dicts(connection=connection, limit=limit),
                    indent=2,
                    sort_keys=True,
                    default=str,
                ),
                file=out,
            )
        else:
            print(
                spans.format_trees(limit, connection=connection), file=out
            )

    def _install(self, blade: str, out) -> None:
        if blade in self._installed:
            print(f"{blade} already installed", file=out)
            return
        if blade == "grtree":
            from repro.datablade import register_grtree_blade

            register_grtree_blade(self.server)
        elif blade == "rtree":
            from repro.rblade import register_rtree_blade

            register_rtree_blade(self.server)
        elif blade == "btree":
            from repro.bblade import register_btree_blade

            register_btree_blade(self.server)
        elif blade == "gist":
            from repro.gist import register_gist_blade

            register_gist_blade(self.server)
        elif blade == "hblade":
            from repro.hblade import register_hybrid_blade

            register_hybrid_blade(self.server)
        else:
            print("blades: grtree, rtree, btree, gist, hblade", file=out)
            return
        self._installed.add(blade)
        print(f"DataBlade {blade} registered", file=out)

    def _faults(self, out) -> None:
        from repro.faults import CATALOG

        registry = self.server.faults
        if registry is None:
            print("no failpoints armed", file=out)
        else:
            # Disarmed points keep their hit counters (marked "off").
            for line in registry.report_lines():
                print(line, file=out)
        print("catalog:", file=out)
        for name in sorted(CATALOG):
            print(f"  {name:<20} {CATALOG[name]}", file=out)

    def _clock(self, args: List[str], out) -> None:
        clock = self.server.clock
        if not args:
            print(f"now = {clock.now} ({clock.format()})", file=out)
        elif args[0].startswith("+"):
            clock.advance(int(args[0][1:]))
            print(f"now = {clock.now} ({clock.format()})", file=out)
        elif args[0] == "set" and len(args) > 1:
            clock.set_text(args[1])
            print(f"now = {clock.now} ({clock.format()})", file=out)
        else:
            print("usage: \\clock | \\clock +N | \\clock set DATE", file=out)

    def _catalog(self, out) -> None:
        catalog = self.server.catalog
        print("tables     :", ", ".join(catalog.table_names()) or "-", file=out)
        print("indices    :", ", ".join(catalog.index_names()) or "-", file=out)
        print(
            "access methods:",
            ", ".join(catalog.access_methods.names()) or "-",
            file=out,
        )
        print(
            "opclasses  :", ", ".join(catalog.opclasses.names()) or "-",
            file=out,
        )
        print("types      :", ", ".join(catalog.types.names()), file=out)

    # ------------------------------------------------------------------

    def interact(self) -> None:
        print("repro SQL shell -- \\help for commands, \\quit to leave")
        while True:
            try:
                line = input(self.PROMPT)
            except (EOFError, KeyboardInterrupt):
                print()
                return
            try:
                self.run_line(line)
            except EOFError:
                return

    def run_script(self, path: str) -> None:
        with open(path, "r", encoding="utf-8") as handle:
            buffer: List[str] = []
            for raw in handle:
                line = raw.rstrip("\n")
                if line.strip().startswith("--"):
                    continue
                if line.strip().startswith("\\"):
                    self.run_line(line)
                    continue
                buffer.append(line)
                if line.rstrip().endswith(";"):
                    self.run_line(" ".join(buffer))
                    buffer = []
            if any(part.strip() for part in buffer):
                self.run_line(" ".join(buffer))


def _granularity(name: str) -> Granularity:
    return Granularity.DAY if name == "day" else Granularity.MONTH


def stats_main(argv: List[str], out=None) -> int:
    """The ``stats`` subcommand: run a workload, dump observability data.

    The ``onstat`` analogue for scripts and CI: the JSON output is the
    same data ``SHOW STATS JSON`` returns inside SQL.
    """
    parser = argparse.ArgumentParser(
        prog="repro.cli stats",
        description="run a SQL script and dump the observability registry",
    )
    parser.add_argument("-f", "--file", help="SQL script to run first")
    parser.add_argument(
        "--format",
        choices=["json", "text"],
        default="json",
        help="output format (default: json)",
    )
    parser.add_argument(
        "--spans",
        action="store_true",
        help="include/print span trees instead of just the registry",
    )
    parser.add_argument(
        "--prometheus",
        action="store_true",
        help="print the Prometheus text exposition and exit",
    )
    parser.add_argument(
        "--granularity", choices=["day", "month"], default="day"
    )
    options = parser.parse_args(argv)
    if out is None:
        out = sys.stdout
    shell = Shell(_granularity(options.granularity))
    if options.file:
        shell.run_script(options.file)
    obs = shell.server.obs
    if options.prometheus:
        print(obs.prometheus(), file=out, end="")
    elif options.format == "json":
        payload = obs.to_dict()
        if not options.spans:
            payload.pop("spans", None)
        print(json.dumps(payload, indent=2, sort_keys=True, default=str), file=out)
    else:
        print(obs.report(), file=out)
        if options.spans:
            print(obs.spans.format_trees(), file=out)
    return 0


def serve_main(argv: List[str], out=None) -> int:
    """The ``serve`` subcommand: run the concurrent serving layer.

    Boots a :class:`DatabaseServer`, optionally installs DataBlades and
    creates sbspaces, then serves TCP clients until interrupted.
    """
    from repro.net import NetServer

    parser = argparse.ArgumentParser(
        prog="repro.cli serve",
        description="serve the repro engine to concurrent TCP clients",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7478)
    parser.add_argument(
        "--workers", type=int, default=4, help="worker pool size"
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=32,
        help="admission-control queue bound (overflow => SERVER_BUSY)",
    )
    parser.add_argument(
        "--lock-timeout",
        type=float,
        default=2.0,
        help="seconds a statement may wait for a conflicting lock",
    )
    parser.add_argument(
        "--install",
        action="append",
        default=[],
        choices=["grtree", "rtree", "btree", "gist", "hblade"],
        help="register a DataBlade at boot (repeatable)",
    )
    parser.add_argument(
        "--sbspace",
        action="append",
        default=[],
        metavar="NAME",
        help="create a smart-blob space at boot (repeatable)",
    )
    parser.add_argument("-f", "--file", help="SQL script to run at boot")
    parser.add_argument(
        "--event-log",
        metavar="PATH",
        help="append structured events (slow queries, errors) as JSONL",
    )
    parser.add_argument(
        "--slow-query-ms",
        type=float,
        metavar="MS",
        help="log statements at or above this many milliseconds",
    )
    parser.add_argument(
        "--granularity", choices=["day", "month"], default="day"
    )
    parser.add_argument(
        "--simulated-io-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="simulated per-statement storage latency, slept under the "
        "engine lock (benchmarking aid for in-memory deployments)",
    )
    parser.add_argument(
        "--replica-of",
        metavar="HOST:PORT",
        help="run as a read replica of the primary at HOST:PORT "
        "(subscribes to its WAL stream; writes are rejected here)",
    )
    parser.add_argument(
        "--replica-name",
        metavar="NAME",
        help="name this replica reports to the primary "
        "(default: replica-<port>)",
    )
    parser.add_argument(
        "--no-replication",
        action="store_true",
        help="do not enable WAL shipping on a primary (replicas "
        "cannot subscribe; saves the logical-logging overhead)",
    )
    options = parser.parse_args(argv)
    if out is None:
        out = sys.stdout
    shell = Shell(_granularity(options.granularity))
    # A primary logs the full logical history from the first statement
    # (replicas bootstrap by replaying it from LSN 0), so shipping goes
    # on before any boot-time scripts run.  Replicas receive their state
    # from the stream instead of logging their own.
    if options.replica_of is None and not options.no_replication:
        shell.server.enable_wal_shipping()
    if options.simulated_io_ms:
        shell.server.simulated_io_s = options.simulated_io_ms / 1000.0
    if options.event_log:
        shell.server.obs.events.path = options.event_log
    if options.slow_query_ms is not None:
        shell.server.obs.events.slow_query_threshold_ms = options.slow_query_ms
    for name in options.sbspace:
        shell.server.create_sbspace(name)
    for blade in options.install:
        shell._install(blade, out)
    if options.file and options.replica_of is None:
        shell.run_script(options.file)
    server = NetServer(
        shell.server,
        host=options.host,
        port=options.port,
        workers=options.workers,
        queue_depth=options.queue_depth,
        lock_timeout=options.lock_timeout,
    ).start()
    link = None
    if options.replica_of:
        from repro.repl import ReplicaLink

        try:
            primary_host, primary_port = options.replica_of.rsplit(":", 1)
            primary_port = int(primary_port)
        except ValueError:
            print(f"error: --replica-of wants HOST:PORT, got "
                  f"{options.replica_of!r}", file=out)
            server.shutdown()
            return 2
        name = options.replica_name or f"replica-{server.port}"
        link = ReplicaLink(
            shell.server, primary_host, primary_port, name=name
        ).start()
        print(
            f"repro replica {name} serving on {server.host}:{server.port}, "
            f"streaming from {primary_host}:{primary_port}; Ctrl-C to stop",
            file=out,
        )
    else:
        print(
            f"repro serving on {server.host}:{server.port} "
            f"({server.workers} workers, queue {server.queue_depth}); "
            f"Ctrl-C to stop",
            file=out,
        )
    try:
        server.serve_forever()
    finally:
        if link is not None:
            link.stop()
        server.shutdown()
        print("server stopped", file=out)
    return 0


def connect_main(argv: List[str], out=None) -> int:
    """The ``connect`` subcommand: a remote SQL shell over the driver."""
    from repro.net import ReproClient, ReproClientError

    parser = argparse.ArgumentParser(
        prog="repro.cli connect",
        description="interactive SQL shell against a served repro engine",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7478)
    parser.add_argument("-e", "--execute", help="run one statement and exit")
    parser.add_argument("-f", "--file", help="run a SQL script and exit")
    options = parser.parse_args(argv)
    if out is None:
        out = sys.stdout
    client = ReproClient(options.host, options.port)
    try:
        client.connect()
    except ReproClientError as exc:
        print(f"error: {exc}", file=out)
        return 1

    def run(statement: str) -> None:
        statement = statement.strip().rstrip(";")
        if not statement:
            return
        try:
            _render_plain(client.execute(statement), out)
        except ReproClientError as exc:
            print(f"error: {exc}", file=out)

    with client:
        if options.execute:
            run(options.execute)
            return 0
        if options.file:
            with open(options.file, "r", encoding="utf-8") as handle:
                for statement in DatabaseServer._split_statements(handle.read()):
                    run(statement)
            return 0
        print(
            f"connected to {options.host}:{options.port} "
            f"(connection {client.connection_id}); \\quit to leave",
            file=out,
        )
        while True:
            try:
                line = input(f"repro@{options.port}> ")
            except (EOFError, KeyboardInterrupt):
                print(file=out)
                return 0
            if line.strip().lower() in ("\\q", "\\quit", "\\exit"):
                return 0
            run(line)
    return 0


def _render_plain(result: Any, out) -> None:
    """Render a wire-decoded result (all cells already text-safe)."""
    if isinstance(result, list):
        if not result:
            print("(no rows)", file=out)
            return
        columns = list(result[0].keys())
        rendered = [{c: str(row[c]) for c in columns} for row in result]
        widths = {
            c: max(len(c), *(len(r[c]) for r in rendered)) for c in columns
        }
        print(" | ".join(c.ljust(widths[c]) for c in columns), file=out)
        print("-+-".join("-" * widths[c] for c in columns), file=out)
        for row in rendered:
            print(
                " | ".join(row[c].ljust(widths[c]) for c in columns), file=out
            )
        print(f"({len(result)} row(s))", file=out)
    else:
        print(result, file=out)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "stats":
        return stats_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "connect":
        return connect_main(argv[1:])
    if argv and argv[0] == "lint":
        from repro.analysis.cli import lint_main

        return lint_main(argv[1:])
    parser = argparse.ArgumentParser(description="repro SQL shell")
    parser.add_argument("-f", "--file", help="run a SQL script and exit")
    parser.add_argument(
        "--granularity",
        choices=["day", "month"],
        default="day",
        help="chronon granularity of the server clock",
    )
    options = parser.parse_args(argv)
    shell = Shell(_granularity(options.granularity))
    if options.file:
        shell.run_script(options.file)
        return 0
    shell.interact()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
