"""Classic GiST instantiations: R-tree rectangles and B+-tree intervals.

[HNP95]'s two flagship examples: instantiating the GiST over bounding
rectangles recovers the R-tree, and over ranges of an ordered domain
recovers the B+-tree.  Both are provided so the generic access method of
the paper's conclusion can be demonstrated serving two different data
types through two operator classes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

from repro.gist.extension import GistExtension
from repro.rtree.geometry import Rect, union_all


@dataclass(frozen=True)
class RectQuery:
    strategy: str  # 'overlap' | 'contains' | 'within' | 'equal'
    rect: Rect


class RectExtension(GistExtension):
    """GiST over 2-D rectangles: the R-tree as a GiST instance."""

    name = "rect"
    _CODEC = struct.Struct("<4d")

    def consistent(self, key: Rect, query: RectQuery) -> bool:
        if query.strategy in ("overlap", "within"):
            return key.intersects(query.rect)
        # contains/equal: the query rect must lie inside the subtree key.
        return key.contains(query.rect)

    def matches(self, key: Rect, query: RectQuery) -> bool:
        if query.strategy == "overlap":
            return key.intersects(query.rect)
        if query.strategy == "contains":
            return key.contains(query.rect)
        if query.strategy == "within":
            return query.rect.contains(key)
        return key == query.rect

    def union(self, keys: Sequence[Rect]) -> Rect:
        return union_all(keys)

    def penalty(self, key: Rect, new: Rect) -> float:
        return key.enlargement(new)

    def pick_split(
        self, keys: Sequence[Rect], min_fill: int
    ) -> Tuple[List[int], List[int]]:
        """Guttman's quadratic split, expressed over indices."""
        worst, worst_waste = (0, 1), None
        for i in range(len(keys)):
            for j in range(i + 1, len(keys)):
                waste = (
                    keys[i].union(keys[j]).area()
                    - keys[i].area()
                    - keys[j].area()
                )
                if worst_waste is None or waste > worst_waste:
                    worst, worst_waste = (i, j), waste
        seed_a, seed_b = worst
        group_a, group_b = [seed_a], [seed_b]
        mbr_a, mbr_b = keys[seed_a], keys[seed_b]
        remaining = [k for k in range(len(keys)) if k not in (seed_a, seed_b)]
        while remaining:
            if len(group_a) + len(remaining) == min_fill:
                group_a.extend(remaining)
                break
            if len(group_b) + len(remaining) == min_fill:
                group_b.extend(remaining)
                break
            index = remaining.pop(0)
            d_a = mbr_a.enlargement(keys[index])
            d_b = mbr_b.enlargement(keys[index])
            if (d_a, mbr_a.area()) <= (d_b, mbr_b.area()):
                group_a.append(index)
                mbr_a = mbr_a.union(keys[index])
            else:
                group_b.append(index)
                mbr_b = mbr_b.union(keys[index])
        return group_a, group_b

    def compress(self, key: Rect) -> bytes:
        return self._CODEC.pack(key.lo[0], key.lo[1], key.hi[0], key.hi[1])

    def decompress(self, data: bytes) -> Rect:
        x1, y1, x2, y2 = self._CODEC.unpack(data)
        return Rect((x1, y1), (x2, y2))

    def query_for(self, strategy: str, constant: Any) -> RectQuery:
        lowered = strategy.lower()
        if lowered.startswith("gs_"):
            lowered = lowered[3:]
        if lowered not in ("overlap", "contains", "within", "equal"):
            raise ValueError(f"{strategy} is not a rect-GiST strategy")
        if not isinstance(constant, Rect):
            raise TypeError("rect-GiST queries take a Box constant")
        return RectQuery(lowered, constant)


@dataclass(frozen=True)
class Interval:
    """A closed interval over an ordered numeric domain.

    Leaf keys are degenerate intervals (lo == hi); internal keys cover
    their subtree's range -- exactly how [HNP95] models the B+-tree.
    """

    lo: float
    hi: float

    def contains_value(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        return self.lo <= other.hi and other.lo <= self.hi


@dataclass(frozen=True)
class IntervalQuery:
    strategy: str  # 'equal' | 'lessthan' | 'greaterthan' | 'between' ...
    low: float
    high: float
    low_inclusive: bool = True
    high_inclusive: bool = True

    def accepts(self, value: float) -> bool:
        if self.low is not None:
            if value < self.low or (value == self.low and not self.low_inclusive):
                return False
        if self.high is not None:
            if value > self.high or (
                value == self.high and not self.high_inclusive
            ):
                return False
        return True


_INF = float("inf")


class IntervalExtension(GistExtension):
    """GiST over an ordered domain: the B+-tree as a GiST instance."""

    name = "interval"
    _CODEC = struct.Struct("<2d")

    def consistent(self, key: Interval, query: IntervalQuery) -> bool:
        low = -_INF if query.low is None else query.low
        high = _INF if query.high is None else query.high
        return key.lo <= high and low <= key.hi

    def matches(self, key: Interval, query: IntervalQuery) -> bool:
        return query.accepts(key.lo)

    def union(self, keys: Sequence[Interval]) -> Interval:
        return Interval(min(k.lo for k in keys), max(k.hi for k in keys))

    def penalty(self, key: Interval, new: Interval) -> float:
        merged = self.union([key, new])
        return (merged.hi - merged.lo) - (key.hi - key.lo)

    def pick_split(
        self, keys: Sequence[Interval], min_fill: int
    ) -> Tuple[List[int], List[int]]:
        ordered = sorted(range(len(keys)), key=lambda i: (keys[i].lo, keys[i].hi))
        middle = max(min_fill, len(ordered) // 2)
        middle = min(middle, len(ordered) - min_fill)
        return ordered[:middle], ordered[middle:]

    def compress(self, key: Interval) -> bytes:
        return self._CODEC.pack(key.lo, key.hi)

    def decompress(self, data: bytes) -> Interval:
        lo, hi = self._CODEC.unpack(data)
        return Interval(lo, hi)

    def query_for(self, strategy: str, constant: Any) -> IntervalQuery:
        value = float(constant)
        lowered = strategy.lower()
        for prefix in ("gs_", "bt_"):
            if lowered.startswith(prefix):
                lowered = lowered[len(prefix):]
        if lowered == "numequal":
            lowered = "equal"
        if lowered == "equal":
            return IntervalQuery("equal", value, value)
        if lowered == "greaterthan":
            return IntervalQuery(lowered, value, None, low_inclusive=False)
        if lowered == "greaterthanorequal":
            return IntervalQuery(lowered, value, None)
        if lowered == "lessthan":
            return IntervalQuery(lowered, None, value, high_inclusive=False)
        if lowered == "lessthanorequal":
            return IntervalQuery(lowered, None, value)
        raise ValueError(f"{strategy} is not an interval-GiST strategy")

    def key_for_value(self, value: Any) -> Interval:
        v = float(value)
        return Interval(v, v)
