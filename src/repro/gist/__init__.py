"""A Generalized Search Tree (GiST) -- the paper's closing proposal.

The conclusions of the paper point past single-purpose access methods:
"Following the ideas of Hellerstein et al. [HNP95] and Aoki [AOK98], a
generic extendible tree-based access method ... could be integrated into
the kernel of the DBMS ... It is also possible to implement such a
generic access method as a DataBlade and use specially designed operator
classes to extend it."

This subpackage builds exactly that: a GiST parameterized by the four
key methods of [HNP95] -- ``consistent``, ``union``, ``penalty``,
``pick_split`` (plus compress/decompress for the page layout) -- with
two classic instantiations (R-tree-style rectangles and B+-tree-style
ordered keys), and a DataBlade (``gist_am``) whose *operator class*
selects the extension.
"""

from repro.gist.blade import GistDataBlade, register_gist_blade
from repro.gist.extension import GistExtension
from repro.gist.extensions import IntervalExtension, RectExtension
from repro.gist.tree import GiST

__all__ = [
    "GistDataBlade",
    "register_gist_blade",
    "GistExtension",
    "IntervalExtension",
    "RectExtension",
    "GiST",
]
