"""The generalized search tree over paged storage.

The tree knows nothing about keys: descent minimizes the extension's
``penalty``, overflow splits via ``pick_split``, parent keys are
``union``s, and search prunes with ``consistent`` -- [HNP95]'s recipe,
on the same page/buffer substrate as every other index here.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.gist.extension import GistExtension
from repro.storage.buffer import BufferPool

_NODE_HEADER = struct.Struct("<BHB")
_KEY_LEN = struct.Struct("<H")
_POINTER = struct.Struct("<qi")


@dataclass
class GistEntry:
    key: Any
    rowid: Optional[int] = None
    fragid: int = 0
    child: Optional[int] = None


@dataclass
class GistNode:
    page_id: int
    leaf: bool
    level: int = 0
    entries: List[GistEntry] = field(default_factory=list)


class GistNodeStore:
    """Serializes GiST nodes, one per page, via the extension's codec."""

    def __init__(self, buffer: BufferPool, extension: GistExtension) -> None:
        self.buffer = buffer
        self.extension = extension
        self.page_size = buffer.store.page_size

    def byte_size(self, node: GistNode) -> int:
        size = _NODE_HEADER.size
        for entry in node.entries:
            size += _KEY_LEN.size + len(self.extension.compress(entry.key))
            size += _POINTER.size
        return size

    def fits(self, node: GistNode) -> bool:
        return self.byte_size(node) <= self.page_size

    def allocate(self, leaf: bool, level: int = 0) -> GistNode:
        return GistNode(self.buffer.allocate(), leaf, level)

    def read(self, page_id: int) -> GistNode:
        data = self.buffer.read(page_id)
        leaf, count, level = _NODE_HEADER.unpack_from(data, 0)
        offset = _NODE_HEADER.size
        node = GistNode(page_id, bool(leaf), level)
        for _ in range(count):
            (key_len,) = _KEY_LEN.unpack_from(data, offset)
            offset += _KEY_LEN.size
            key = self.extension.decompress(data[offset : offset + key_len])
            offset += key_len
            a, b = _POINTER.unpack_from(data, offset)
            offset += _POINTER.size
            if leaf:
                node.entries.append(GistEntry(key, rowid=a, fragid=b))
            else:
                node.entries.append(GistEntry(key, child=a))
        return node

    def write(self, node: GistNode) -> None:
        if not self.fits(node):
            raise ValueError("GiST node overflow")
        parts = [_NODE_HEADER.pack(node.leaf, len(node.entries), node.level)]
        for entry in node.entries:
            compressed = self.extension.compress(entry.key)
            parts.append(_KEY_LEN.pack(len(compressed)))
            parts.append(compressed)
            if node.leaf:
                parts.append(_POINTER.pack(entry.rowid, entry.fragid))
            else:
                parts.append(_POINTER.pack(entry.child, 0))
        self.buffer.write(node.page_id, b"".join(parts))

    def free(self, page_id: int) -> None:
        self.buffer.free(page_id)


class GiST:
    """A generalized search tree driven by a :class:`GistExtension`."""

    MIN_ENTRIES = 2

    def __init__(
        self,
        store: GistNodeStore,
        root_id: Optional[int] = None,
        height: int = 1,
        size: int = 0,
    ) -> None:
        self.store = store
        self.extension = store.extension
        if root_id is None:
            root = store.allocate(leaf=True, level=0)
            store.write(root)
            root_id = root.page_id
        self.root_id = root_id
        self.height = height
        self.size = size
        self.last_node_accesses = 0

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, key: Any, rowid: int, fragid: int = 0) -> None:
        self._insert_entry(GistEntry(key, rowid=rowid, fragid=fragid), level=0)
        self.size += 1

    def _insert_entry(self, entry: GistEntry, level: int) -> None:
        path = [self.store.read(self.root_id)]
        while path[-1].level > level:
            node = path[-1]
            best, best_penalty = 0, None
            for i, candidate in enumerate(node.entries):
                p = self.extension.penalty(candidate.key, entry.key)
                if best_penalty is None or p < best_penalty:
                    best, best_penalty = i, p
            path.append(self.store.read(node.entries[best].child))
        path[-1].entries.append(entry)
        self._propagate(path)

    def _propagate(self, path: List[GistNode]) -> None:
        for depth in range(len(path) - 1, -1, -1):
            node = path[depth]
            if not self.store.fits(node):
                self._split(path, depth)
                if depth == 0:
                    return
                continue
            self.store.write(node)
            if depth > 0:
                self._refresh_parent_key(path[depth - 1], node)

    def _refresh_parent_key(self, parent: GistNode, child: GistNode) -> None:
        for entry in parent.entries:
            if entry.child == child.page_id:
                entry.key = self.extension.union(
                    [e.key for e in child.entries]
                )
                return
        raise RuntimeError("child not found in parent")

    def _split(self, path: List[GistNode], depth: int) -> None:
        node = path[depth]
        keys = [e.key for e in node.entries]
        group_a, group_b = self.extension.pick_split(keys, self.MIN_ENTRIES)
        entries = node.entries
        node.entries = [entries[i] for i in group_a]
        sibling = self.store.allocate(leaf=node.leaf, level=node.level)
        sibling.entries = [entries[i] for i in group_b]
        self.store.write(node)
        self.store.write(sibling)
        key_a = self.extension.union([e.key for e in node.entries])
        key_b = self.extension.union([e.key for e in sibling.entries])
        if depth == 0:
            new_root = self.store.allocate(leaf=False, level=node.level + 1)
            new_root.entries = [
                GistEntry(key_a, child=node.page_id),
                GistEntry(key_b, child=sibling.page_id),
            ]
            self.store.write(new_root)
            self.root_id = new_root.page_id
            self.height += 1
            return
        parent = path[depth - 1]
        for entry in parent.entries:
            if entry.child == node.page_id:
                entry.key = key_a
                break
        parent.entries.append(GistEntry(key_b, child=sibling.page_id))

    # ------------------------------------------------------------------
    # Deletion (with condensation)
    # ------------------------------------------------------------------

    def delete(self, key: Any, rowid: int, fragid: int = 0) -> bool:
        found = self._find_leaf(self.store.read(self.root_id), key, rowid,
                                fragid, [])
        if found is None:
            return False
        path, index = found
        del path[-1].entries[index]
        self.size -= 1
        self._condense(path)
        self._shrink_root()
        return True

    def _covers(self, outer: Any, inner: Any) -> bool:
        merged = self.extension.union([outer, inner])
        return self.extension.compress(merged) == self.extension.compress(outer)

    def _find_leaf(self, node, key, rowid, fragid, path):
        path = path + [node]
        if node.leaf:
            target = self.extension.compress(key)
            for i, entry in enumerate(node.entries):
                if (
                    entry.rowid == rowid
                    and entry.fragid == fragid
                    and self.extension.compress(entry.key) == target
                ):
                    return path, i
            return None
        for entry in node.entries:
            if self._covers(entry.key, key):
                result = self._find_leaf(
                    self.store.read(entry.child), key, rowid, fragid, path
                )
                if result is not None:
                    return result
        return None

    def _condense(self, path: List[GistNode]) -> None:
        orphans: List[Tuple[GistEntry, int]] = []
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            if len(node.entries) < self.MIN_ENTRIES:
                parent.entries = [
                    e for e in parent.entries if e.child != node.page_id
                ]
                orphans.extend((e, node.level) for e in node.entries)
                self.store.free(node.page_id)
            else:
                self.store.write(node)
                self._refresh_parent_key(parent, node)
        self.store.write(path[0])
        for entry, level in sorted(orphans, key=lambda pair: pair[1]):
            self._insert_entry(entry, level)

    def _shrink_root(self) -> None:
        root = self.store.read(self.root_id)
        while not root.leaf and len(root.entries) == 1:
            child_id = root.entries[0].child
            self.store.free(root.page_id)
            self.root_id = child_id
            self.height -= 1
            root = self.store.read(child_id)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(self, query: Any) -> List[Tuple[int, int]]:
        self.last_node_accesses = 0
        results: List[Tuple[int, int]] = []
        stack = [self.root_id]
        while stack:
            node = self.store.read(stack.pop())
            self.last_node_accesses += 1
            for entry in node.entries:
                if node.leaf:
                    if self.extension.matches(entry.key, query):
                        results.append((entry.rowid, entry.fragid))
                elif self.extension.consistent(entry.key, query):
                    stack.append(entry.child)
        return results

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def iter_nodes(self):
        stack = [self.root_id]
        while stack:
            node = self.store.read(stack.pop())
            yield node
            if not node.leaf:
                stack.extend(e.child for e in node.entries)

    def node_count(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    def check(self) -> None:
        counted = 0
        for node in self.iter_nodes():
            if node.leaf:
                if node.level != 0:
                    raise AssertionError("leaf at nonzero level")
                counted += len(node.entries)
                continue
            for entry in node.entries:
                child = self.store.read(entry.child)
                if child.level != node.level - 1:
                    raise AssertionError("level mismatch")
                child_union = self.extension.union(
                    [e.key for e in child.entries]
                )
                if not self._covers(entry.key, child_union):
                    raise AssertionError(
                        f"parent key does not cover child {child.page_id}"
                    )
        if counted != self.size:
            raise AssertionError(
                f"size mismatch: counted {counted}, recorded {self.size}"
            )

    def stats(self) -> Dict[str, float]:
        return {
            "height": self.height,
            "size": self.size,
            "nodes": self.node_count(),
            "extension": self.extension.name,
        }
