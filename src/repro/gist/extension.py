"""The GiST extension interface: the key methods of [HNP95].

An extension ("key class") tells the generic tree everything domain-
specific it needs:

* ``consistent(key, query)`` -- may the subtree under *key* contain
  entries satisfying *query*?  (Must never return a false negative.)
* ``union(keys)`` -- a key covering all of *keys* (the bounding
  predicate for the parent entry).
* ``penalty(key, new)`` -- how much worse *key* gets if *new* is
  inserted beneath it (drives ChooseSubtree).
* ``pick_split(keys)`` -- partition an overflowing node's keys into two
  groups, each at least ``min_fill_count`` large.

plus ``compress``/``decompress`` for the on-page representation and
``query_for(strategy, constant)`` translating a strategy-function name
into a query object (how the DataBlade's operator class plugs in).
"""

from __future__ import annotations

import abc
from typing import Any, List, Sequence, Tuple


class GistExtension(abc.ABC):
    """Domain-specific behaviour for a :class:`~repro.gist.tree.GiST`."""

    #: Human-readable name (used in error messages and catalogs).
    name: str = "abstract"

    @abc.abstractmethod
    def consistent(self, key: Any, query: Any) -> bool:
        """May entries under *key* satisfy *query*?  No false negatives."""

    @abc.abstractmethod
    def union(self, keys: Sequence[Any]) -> Any:
        """A key covering every key in *keys*."""

    @abc.abstractmethod
    def penalty(self, key: Any, new: Any) -> float:
        """Cost of absorbing *new* under *key* (lower is better)."""

    @abc.abstractmethod
    def pick_split(
        self, keys: Sequence[Any], min_fill: int
    ) -> Tuple[List[int], List[int]]:
        """Index partition of *keys* into two groups of >= *min_fill*."""

    @abc.abstractmethod
    def compress(self, key: Any) -> bytes:
        """Serialize a key for the page layout."""

    @abc.abstractmethod
    def decompress(self, data: bytes) -> Any:
        """Inverse of :meth:`compress`."""

    @abc.abstractmethod
    def query_for(self, strategy: str, constant: Any) -> Any:
        """Build a query object from a strategy-function name and its
        constant argument (raises for strategies the extension lacks)."""

    @abc.abstractmethod
    def matches(self, key: Any, query: Any) -> bool:
        """Exact leaf-level test for *query* (consistent() may be a
        lossy upper bound; this one is precise)."""

    def key_for_value(self, value: Any) -> Any:
        """Leaf key for a column value (identity unless overridden)."""
        return value
