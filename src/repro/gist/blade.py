"""The generic GiST DataBlade (``gist_am``).

The paper's conclusion made concrete: *one* set of purpose functions
serves every GiST instantiation; the *operator class* chosen at
``CREATE INDEX`` time selects the extension (key class) -- "use
specially designed operator classes to extend it".  Shipping opclasses:

* ``gist_rect_ops`` -- Box column, strategies Overlap/Contains/Within/
  Equal (the R-tree instance);
* ``gist_interval_ops`` -- INTEGER/FLOAT column, comparison strategies
  (the B+-tree instance).
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional

from repro.datablade.blob import BladeBlob
from repro.gist.extension import GistExtension
from repro.gist.extensions import IntervalExtension, RectExtension
from repro.gist.tree import GiST, GistNodeStore
from repro.server.access_method import (
    BooleanOperator,
    CompoundQualification,
    IndexDescriptor,
    Qualification,
    RowReference,
    ScanDescriptor,
    SimpleQualification,
)
from repro.server.errors import AccessMethodError
from repro.storage.buffer import BufferPool
from repro.storage.sbspace import LargeObjectHandle, OpenMode

_META = struct.Struct("<4sqqq")
_META_MAGIC = b"GIST"


class GistDataBlade:
    LIBRARY_PATH = "usr/functions/gist.bld"
    AM_NAME = "gist_am"
    METADATA_TABLE = "gist_indexdata"

    def __init__(self, server, buffer_capacity: int = 64) -> None:
        self.server = server
        self.buffer_capacity = buffer_capacity
        #: opclass name (lowercase) -> extension instance.
        self.extensions: Dict[str, GistExtension] = {}

    def register_extension(self, opclass_name: str, extension: GistExtension):
        self.extensions[opclass_name.lower()] = extension
        return extension

    def _extension(self, td: IndexDescriptor) -> GistExtension:
        name = td.opclass_names[0].lower()
        try:
            return self.extensions[name]
        except KeyError:
            raise AccessMethodError(
                f"no GiST extension registered for operator class {name}"
            ) from None

    # ------------------------------------------------------------------
    # Purpose functions
    # ------------------------------------------------------------------

    def gs_create(self, td: IndexDescriptor) -> int:
        if len(td.columns) != 1:
            raise AccessMethodError(f"{self.AM_NAME} indexes exactly one column")
        extension = self._extension(td)  # fails fast for unknown opclasses
        space = self.server.get_sbspace(td.space_name)
        blob = BladeBlob.create(space)
        self.server.catalog.get_table(self.METADATA_TABLE).insert_row(
            {"indexname": td.index_name, "blobhandle": blob.handle.value}
        )
        blob.open(td.session, OpenMode.WRITE)
        pool = BufferPool(blob.page_store(), capacity=self.buffer_capacity)
        pool.allocate()  # meta page 0
        tree = GiST(GistNodeStore(pool, extension))
        td.user_data.update({"tree": tree, "blob": blob, "pool": pool})
        return 0

    def gs_open(self, td: IndexDescriptor) -> int:
        if "tree" in td.user_data:
            return 0
        meta_table = self.server.catalog.get_table(self.METADATA_TABLE)
        handle_text = None
        for _, row in meta_table.scan():
            if row["indexname"] == td.index_name:
                handle_text = row["blobhandle"]
                break
        if handle_text is None:
            raise AccessMethodError(f"no metadata for index {td.index_name}")
        space = self.server.get_sbspace(td.space_name)
        blob = BladeBlob(space, LargeObjectHandle(handle_text))
        blob.open(td.session, OpenMode.READ)
        pool = BufferPool(blob.page_store(), capacity=self.buffer_capacity)
        magic, root_id, height, size = _META.unpack_from(pool.read(0), 0)
        if magic != _META_MAGIC:
            raise AccessMethodError(f"index {td.index_name} storage is corrupt")
        tree = GiST(
            GistNodeStore(pool, self._extension(td)),
            root_id=root_id, height=height, size=size,
        )
        td.user_data.update({"tree": tree, "blob": blob, "pool": pool})
        return 0

    def gs_close(self, td: IndexDescriptor) -> int:
        tree: GiST = td.user_data["tree"]
        pool: BufferPool = td.user_data["pool"]
        blob: BladeBlob = td.user_data["blob"]
        if blob._open_mode is OpenMode.WRITE:
            pool.write(
                0, _META.pack(_META_MAGIC, tree.root_id, tree.height, tree.size)
            )
        pool.flush()
        blob.close()
        td.user_data.clear()
        return 0

    def gs_drop(self, td: IndexDescriptor) -> int:
        if "tree" not in td.user_data:
            self.gs_open(td)
        td.user_data["blob"].drop()
        td.user_data.clear()
        meta_table = self.server.catalog.get_table(self.METADATA_TABLE)
        for rowid, row in meta_table.scan():
            if row["indexname"] == td.index_name:
                meta_table.delete_row(rowid)
                break
        return 0

    def gs_beginscan(self, sd: ScanDescriptor) -> int:
        if sd.qualification is None:
            raise AccessMethodError("gs_beginscan needs a qualification")
        extension = self._extension(sd.index)
        tree: GiST = sd.index.user_data["tree"]
        branches = self._to_dnf(sd.qualification, extension)
        sd.user_data["scan"] = _GScan(tree, extension, branches)
        return 0

    def gs_rescan(self, sd: ScanDescriptor) -> int:
        sd.user_data["scan"].reset()
        return 0

    def gs_getnext(self, sd: ScanDescriptor) -> Optional[RowReference]:
        return sd.user_data["scan"].next()

    def gs_endscan(self, sd: ScanDescriptor) -> int:
        sd.user_data.pop("scan", None)
        return 0

    def gs_insert(self, td: IndexDescriptor, newrow, newrowid: int) -> int:
        td.user_data["blob"].ensure_writable()
        key = self._extension(td).key_for_value(newrow[0])
        td.user_data["tree"].insert(key, newrowid)
        return 0

    def gs_delete(self, td: IndexDescriptor, oldrow, oldrowid: int) -> int:
        td.user_data["blob"].ensure_writable()
        key = self._extension(td).key_for_value(oldrow[0])
        if not td.user_data["tree"].delete(key, oldrowid):
            raise AccessMethodError(
                f"index {td.index_name} has no entry for rowid {oldrowid}"
            )
        return 0

    def gs_update(self, td, oldrow, oldrowid: int, newrow, newrowid: int) -> int:
        self.gs_delete(td, oldrow, oldrowid)
        self.gs_insert(td, newrow, newrowid)
        return 0

    def gs_scancost(self, sd: ScanDescriptor) -> float:
        tree = sd.index.user_data.get("tree")
        height = tree.height if tree is not None else 2
        return float(height + 1)

    def gs_stats(self, td: IndexDescriptor) -> Dict[str, Any]:
        return td.user_data["tree"].stats()

    def gs_check(self, td: IndexDescriptor) -> int:
        try:
            td.user_data["tree"].check()
        except AssertionError as exc:
            raise AccessMethodError(f"index {td.index_name} corrupt: {exc}") from exc
        return 0

    # ------------------------------------------------------------------

    def _to_dnf(self, qual: Qualification, extension: GistExtension):
        if isinstance(qual, SimpleQualification):
            query = extension.query_for(qual.function, qual.constant)
            return [[query]]
        assert isinstance(qual, CompoundQualification)
        child_dnfs = [self._to_dnf(c, extension) for c in qual.children]
        if qual.operator is BooleanOperator.OR:
            return [branch for dnf in child_dnfs for branch in dnf]
        result = [[]]
        for dnf in child_dnfs:
            result = [prefix + branch for prefix in result for branch in dnf]
        return result

    def exports(self) -> Dict[str, Any]:
        return {
            "gs_create": self.gs_create,
            "gs_drop": self.gs_drop,
            "gs_open": self.gs_open,
            "gs_close": self.gs_close,
            "gs_beginscan": self.gs_beginscan,
            "gs_endscan": self.gs_endscan,
            "gs_rescan": self.gs_rescan,
            "gs_getnext": self.gs_getnext,
            "gs_insert": self.gs_insert,
            "gs_delete": self.gs_delete,
            "gs_update": self.gs_update,
            "gs_scancost": self.gs_scancost,
            "gs_stats": self.gs_stats,
            "gs_check": self.gs_check,
        }


class _GScan:
    def __init__(self, tree: GiST, extension: GistExtension, branches) -> None:
        self.tree = tree
        self.extension = extension
        self.branches = branches
        self.reset()

    def reset(self) -> None:
        self._results = []
        self._pos = 0
        seen = set()
        # Leaf keys are needed for the residual predicates of a branch;
        # collect them during the probe.
        for branch in self.branches:
            primary = branch[0]
            for node in self._probe_nodes(primary):
                for entry in node.entries:
                    if not self.extension.matches(entry.key, primary):
                        continue
                    if any(
                        not self.extension.matches(entry.key, q)
                        for q in branch[1:]
                    ):
                        continue
                    pointer = (entry.rowid, entry.fragid)
                    if pointer in seen:
                        continue
                    seen.add(pointer)
                    self._results.append((entry.rowid, entry.fragid, entry.key))

    def _probe_nodes(self, query):
        stack = [self.tree.root_id]
        while stack:
            node = self.tree.store.read(stack.pop())
            if node.leaf:
                yield node
            else:
                for entry in node.entries:
                    if self.extension.consistent(entry.key, query):
                        stack.append(entry.child)

    def next(self) -> Optional[RowReference]:
        if self._pos >= len(self._results):
            return None
        rowid, fragid, key = self._results[self._pos]
        self._pos += 1
        return RowReference(rowid=rowid, fragid=fragid, row=(key,))


def register_gist_blade(server, buffer_capacity: int = 64) -> GistDataBlade:
    """Install the generic GiST access method with its two shipped
    operator classes (rect and interval instantiations)."""
    blade = GistDataBlade(server, buffer_capacity=buffer_capacity)
    # The rect instantiation indexes Box columns; make the type available
    # even when the R-tree blade is not installed.
    from repro.rblade.blade import BOX_TYPE_NAME, make_box_type

    if BOX_TYPE_NAME not in server.types:
        server.types.register(make_box_type())
    server.library.register_module(GistDataBlade.LIBRARY_PATH, blade.exports())

    statements: List[str] = []
    for symbol in (
        "gs_create", "gs_drop", "gs_open", "gs_close", "gs_beginscan",
        "gs_endscan", "gs_rescan", "gs_getnext", "gs_insert", "gs_delete",
        "gs_update", "gs_scancost", "gs_stats", "gs_check",
    ):
        statements.append(
            f"CREATE FUNCTION {symbol}(pointer) RETURNING int "
            f"EXTERNAL NAME '{blade.LIBRARY_PATH}({symbol})' LANGUAGE c"
        )
    # Rect strategies over Box (registered by the R-tree blade when both
    # are installed; register private spellings to stay independent).
    rect_exports = {
        "gist_overlap_udr": lambda a, b: a.intersects(b),
        "gist_contains_udr": lambda a, b: a.contains(b),
        "gist_within_udr": lambda a, b: b.contains(a),
        "gist_equal_udr": lambda a, b: a == b,
    }
    server.library.register_module(blade.LIBRARY_PATH, rect_exports)
    for name, symbol in (
        ("GS_Overlap", "gist_overlap_udr"),
        ("GS_Contains", "gist_contains_udr"),
        ("GS_Within", "gist_within_udr"),
        ("GS_Equal", "gist_equal_udr"),
    ):
        statements.append(
            f"CREATE FUNCTION {name}(Box, Box) RETURNING boolean "
            f"EXTERNAL NAME '{blade.LIBRARY_PATH}({symbol})' LANGUAGE c"
        )
    # Interval strategies over numbers.
    num_exports = {
        "gist_num_eq_udr": lambda a, b: a == b,
        "gist_num_gt_udr": lambda a, b: a > b,
        "gist_num_ge_udr": lambda a, b: a >= b,
        "gist_num_lt_udr": lambda a, b: a < b,
        "gist_num_le_udr": lambda a, b: a <= b,
    }
    server.library.register_module(blade.LIBRARY_PATH, num_exports)
    for type_name in ("INTEGER", "FLOAT"):
        for name, symbol in (
            ("GS_NumEqual", "gist_num_eq_udr"),
            ("GS_GreaterThan", "gist_num_gt_udr"),
            ("GS_GreaterThanOrEqual", "gist_num_ge_udr"),
            ("GS_LessThan", "gist_num_lt_udr"),
            ("GS_LessThanOrEqual", "gist_num_le_udr"),
        ):
            statements.append(
                f"CREATE FUNCTION {name}({type_name}, {type_name}) "
                f"RETURNING boolean "
                f"EXTERNAL NAME '{blade.LIBRARY_PATH}({symbol})' LANGUAGE c"
            )
    slots = ", ".join(
        f"am_{slot} = gs_{slot}"
        for slot in (
            "create", "drop", "open", "close", "beginscan", "endscan",
            "rescan", "getnext", "insert", "delete", "update", "scancost",
            "stats", "check",
        )
    )
    statements.append(
        f'CREATE SECONDARY ACCESS_METHOD {blade.AM_NAME} ({slots}, '
        f'am_sptype = "S")'
    )
    statements.append(
        f"CREATE DEFAULT OPCLASS gist_rect_ops FOR {blade.AM_NAME} "
        f"STRATEGIES(GS_Overlap, GS_Contains, GS_Within, GS_Equal)"
    )
    statements.append(
        f"CREATE OPCLASS gist_interval_ops FOR {blade.AM_NAME} "
        f"STRATEGIES(GS_NumEqual, GS_GreaterThan, GS_GreaterThanOrEqual, "
        f"GS_LessThan, GS_LessThanOrEqual)"
    )
    statements.append(
        f"CREATE TABLE {blade.METADATA_TABLE} "
        f"(indexname LVARCHAR, blobhandle LVARCHAR)"
    )
    with server.provisioning():
        server.run_script(";\n".join(statements))

    blade.register_extension("gist_rect_ops", RectExtension())
    blade.register_extension("gist_interval_ops", IntervalExtension())
    return blade
