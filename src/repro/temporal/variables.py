"""The temporal variables ``UC`` and ``NOW``.

The 4TS format (Section 2 of the paper) uses two variables that denote the
current time: ``UC`` ("until changed") may appear as a transaction-time end,
and ``NOW`` may appear as a valid-time end.  A timestamp is therefore either
a *ground* value (an integer chronon) or one of these two singletons.

The singletons deliberately do not support ordering against integers: any
comparison of a variable timestamp must first be resolved against a current
time (see :mod:`repro.temporal.regions`), and accidental comparisons are a
classic source of bugs in bitemporal code.
"""

from __future__ import annotations

from typing import Union


class _Variable:
    """A named singleton temporal variable (``UC`` or ``NOW``)."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def __repr__(self) -> str:
        return self._name

    def __reduce__(self):
        # Pickling must preserve singleton identity.
        return (_lookup, (self._name,))

    # Explicitly reject ordering: a variable must be resolved first.
    def _refuse(self, other):  # pragma: no cover - defensive
        raise TypeError(
            f"cannot order temporal variable {self._name}; "
            "resolve it against a current time first"
        )

    __lt__ = __le__ = __gt__ = __ge__ = _refuse


#: "Until changed" -- the variable transaction-time end of a current tuple.
UC = _Variable("UC")

#: The variable valid-time end that tracks the current time.
NOW = _Variable("NOW")

_BY_NAME = {"UC": UC, "NOW": NOW}


def _lookup(name: str) -> _Variable:
    return _BY_NAME[name]


#: A timestamp is a ground chronon or one of the two variables.
Timestamp = Union[int, _Variable]


def is_ground(value: Timestamp) -> bool:
    """Return ``True`` when *value* is a fixed (non-variable) timestamp."""
    return not isinstance(value, _Variable)
