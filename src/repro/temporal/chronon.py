"""Chronons, granularities, and the simulated clock.

Time in the reproduction is discrete: a *chronon* is an integer count of
granules since an epoch.  The paper's prototype uses a granularity of days
(the Informix ``DATE`` type, Section 5.1), while the running EmpDep example
of Section 2 uses months; both granularities are supported by codecs that
translate between chronons and the paper's textual formats (``mm/dd/yy``
for days, ``m/yy`` for months).

All resolution of the variables ``UC``/``NOW`` flows through a
:class:`Clock`, so tests and benchmarks can advance simulated time and
observe bitemporal regions *growing* -- the central semantic of the paper.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass, field

#: A chronon is just an integer; the alias documents intent in signatures.
Chronon = int

#: Day number of 1900-01-01, the epoch for the DAY granularity.
_DAY_EPOCH = datetime.date(1900, 1, 1).toordinal()

#: Two-digit years below the pivot are 20xx, others 19xx (the paper's data
#: is from the 1990s: "12/10/95" means 1995).
_CENTURY_PIVOT = 70


class Granularity(enum.Enum):
    """Supported time granularities and their textual formats."""

    DAY = "day"
    MONTH = "month"


def _expand_year(year: int) -> int:
    if year >= 100:
        return year
    return 2000 + year if year < _CENTURY_PIVOT else 1900 + year


def parse_chronon(text: str, granularity: Granularity = Granularity.DAY) -> Chronon:
    """Parse the paper's textual date formats into a chronon.

    DAY granularity accepts ``mm/dd/yy`` or ``mm/dd/yyyy`` (e.g. the paper's
    query constant ``12/10/95``); MONTH granularity accepts ``m/yy`` or
    ``m/yyyy`` (e.g. ``4/97`` from the EmpDep relation).
    """
    parts = [p.strip() for p in text.strip().split("/")]
    if granularity is Granularity.DAY:
        if len(parts) != 3:
            raise ValueError(f"expected mm/dd/yy date, got {text!r}")
        month, day, year = (int(p) for p in parts)
        year = _expand_year(year)
        return datetime.date(year, month, day).toordinal() - _DAY_EPOCH
    if len(parts) != 2:
        raise ValueError(f"expected m/yy month, got {text!r}")
    month, year = int(parts[0]), _expand_year(int(parts[1]))
    if not 1 <= month <= 12:
        raise ValueError(f"month out of range in {text!r}")
    return (year - 1900) * 12 + (month - 1)


def format_chronon(value: Chronon, granularity: Granularity = Granularity.DAY) -> str:
    """Format a chronon back into the paper's textual form."""
    if granularity is Granularity.DAY:
        date = datetime.date.fromordinal(value + _DAY_EPOCH)
        return f"{date.month:02d}/{date.day:02d}/{date.year:04d}"
    year, month = divmod(value, 12)
    return f"{month + 1}/{year + 1900:04d}"


@dataclass
class Clock:
    """A settable, monotonically advancing source of the current time.

    The paper (Section 5.4) discusses *when* the current time is sampled:
    once per statement or once per transaction.  The server samples the
    clock accordingly; this class only guarantees monotonicity, mirroring
    the transaction-time axiom that time never moves backwards.
    """

    now: Chronon = 0
    granularity: Granularity = Granularity.DAY
    _observers: list = field(default_factory=list, repr=False)

    def advance(self, delta: Chronon = 1) -> Chronon:
        """Move the current time forward by *delta* chronons."""
        if delta < 0:
            raise ValueError("time cannot move backwards")
        self.now += delta
        for observer in self._observers:
            observer(self.now)
        return self.now

    def set(self, value: Chronon) -> Chronon:
        """Jump the clock forward to *value* (never backwards)."""
        if value < self.now:
            raise ValueError(
                f"time cannot move backwards (now={self.now}, requested={value})"
            )
        delta = value - self.now
        if delta:
            self.advance(delta)
        return self.now

    def set_text(self, text: str) -> Chronon:
        """Jump the clock to a textual date in this clock's granularity."""
        return self.set(parse_chronon(text, self.granularity))

    def subscribe(self, observer) -> None:
        """Register ``observer(now)`` to be called after every advance."""
        self._observers.append(observer)

    def format(self, value: Chronon | None = None) -> str:
        """Format *value* (default: the current time) as text."""
        return format_chronon(self.now if value is None else value, self.granularity)
