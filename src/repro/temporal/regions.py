"""Two-dimensional bitemporal region geometry.

A bitemporal region lives in the plane spanned by transaction time (the
horizontal axis, ``tt``) and valid time (the vertical axis, ``vt``).  After
the variables ``UC``/``NOW`` have been resolved against a current time, the
regions of the paper's Figure 1 -- and every minimum bounding region the
GR-tree maintains -- belong to one closed family::

    Region(tt_lo, tt_hi, vt_lo, vt_hi, stair)
      = { (t, v) : tt_lo <= t <= tt_hi,
                   vt_lo <= v <= (min(vt_hi, t) if stair else vt_hi) }

i.e. axis-aligned rectangles, optionally clipped by the ``vt <= tt``
diagonal ("stair shapes").  The family is closed under intersection, and
bounding boxes of sets of members stay within the family, which gives all
GR-tree predicates closed forms instead of general polygon arithmetic.

All intervals are closed, matching the paper's convention, and chronons are
integers, so a region's :meth:`Region.area` counts lattice cells (each
chronon-square contributes 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.temporal.chronon import Chronon


@dataclass(frozen=True)
class Region:
    """A (possibly stair-shaped) bitemporal region, fully resolved in time.

    Instances are canonical: a "stair" whose diagonal never cuts into the
    rectangle is stored as a plain rectangle, and a stair's ``vt_hi`` is
    clipped to ``tt_hi``.  Use :meth:`make` to construct canonically.
    """

    tt_lo: Chronon
    tt_hi: Chronon
    vt_lo: Chronon
    vt_hi: Chronon
    stair: bool = False

    @staticmethod
    def make(
        tt_lo: Chronon,
        tt_hi: Chronon,
        vt_lo: Chronon,
        vt_hi: Chronon,
        stair: bool = False,
    ) -> Optional["Region"]:
        """Build a canonical region; return ``None`` when it is empty."""
        if tt_lo > tt_hi or vt_lo > vt_hi:
            return None
        if stair:
            if vt_lo > tt_hi:
                return None  # the diagonal cuts away everything
            vt_hi = min(vt_hi, tt_hi)
            if vt_lo > vt_hi:
                return None
            if vt_hi <= tt_lo:
                stair = False  # diagonal never binds: it is a rectangle
        return Region(tt_lo, tt_hi, vt_lo, vt_hi, stair)

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------

    def vt_end_at(self, t: Chronon) -> Chronon:
        """The top edge of the region at transaction time *t*."""
        return min(self.vt_hi, t) if self.stair else self.vt_hi

    def contains_point(self, t: Chronon, v: Chronon) -> bool:
        """Membership test for a single (transaction, valid) time point."""
        return (
            self.tt_lo <= t <= self.tt_hi
            and self.vt_lo <= v <= self.vt_end_at(t)
        )

    def area(self) -> int:
        """Number of lattice cells covered (closed-interval convention)."""
        width = self.tt_hi - self.tt_lo + 1
        if not self.stair:
            return width * (self.vt_hi - self.vt_lo + 1)
        total = width * (self.vt_hi - self.vt_lo + 1)
        # Subtract the cells above the diagonal: at column t < vt_hi the
        # top is t instead of vt_hi, losing (vt_hi - t) cells.
        t0 = max(self.tt_lo, self.vt_lo)
        t1 = min(self.tt_hi, self.vt_hi - 1)
        if t0 <= t1:
            n = t1 - t0 + 1
            # sum_{t=t0}^{t1} (vt_hi - t)
            total -= n * self.vt_hi - (t0 + t1) * n // 2
        # Columns with t < vt_lo are entirely above the diagonal.
        t_empty_hi = min(self.tt_hi, self.vt_lo - 1)
        if self.tt_lo <= t_empty_hi:
            total -= (t_empty_hi - self.tt_lo + 1) * (self.vt_hi - self.vt_lo + 1)
        return total

    def margin(self) -> int:
        """Half-perimeter analogue used by R*-style split heuristics."""
        return (self.tt_hi - self.tt_lo + 1) + (self.vt_hi - self.vt_lo + 1)

    def bounding_rectangle(self) -> "Region":
        """The minimum bounding *rectangle* of this region."""
        if not self.stair:
            return self
        return Region(self.tt_lo, self.tt_hi, self.vt_lo, self.vt_hi, False)

    # ------------------------------------------------------------------
    # Predicates (the strategy-function semantics)
    # ------------------------------------------------------------------

    def overlaps(self, other: "Region") -> bool:
        """Do the two regions share at least one point?"""
        tt_lo = max(self.tt_lo, other.tt_lo)
        tt_hi = min(self.tt_hi, other.tt_hi)
        if tt_lo > tt_hi:
            return False
        # Both top edges are nondecreasing in t, so the widest valid-time
        # overlap within [tt_lo, tt_hi] occurs at its right end.
        v_lo = max(self.vt_lo, other.vt_lo)
        v_hi = min(self.vt_end_at(tt_hi), other.vt_end_at(tt_hi))
        return v_lo <= v_hi

    def contains(self, other: "Region") -> bool:
        """Is *other* fully inside this region?"""
        if not (self.tt_lo <= other.tt_lo and other.tt_hi <= self.tt_hi):
            return False
        if self.vt_lo > other.vt_lo:
            return False
        # Need other.vt_end_at(t) <= self.vt_end_at(t) over other's
        # tt-range.  Both sides are piecewise linear (slopes 0 or 1), so it
        # suffices to check the endpoints and each side's breakpoint.
        checkpoints = {other.tt_lo, other.tt_hi}
        for region in (self, other):
            if region.stair and other.tt_lo <= region.vt_hi <= other.tt_hi:
                checkpoints.add(region.vt_hi)
        return all(
            other.vt_end_at(t) <= self.vt_end_at(t) for t in checkpoints
        )

    def contained_in(self, other: "Region") -> bool:
        """Is this region fully inside *other*?"""
        return other.contains(self)

    def equal(self, other: "Region") -> bool:
        """Point-set equality (canonical instances compare by fields)."""
        return self == other

    def intersection(self, other: "Region") -> Optional["Region"]:
        """Set intersection; the family is closed under it."""
        return Region.make(
            max(self.tt_lo, other.tt_lo),
            min(self.tt_hi, other.tt_hi),
            max(self.vt_lo, other.vt_lo),
            min(self.vt_hi, other.vt_hi),
            self.stair or other.stair,
        )

    # ------------------------------------------------------------------
    # Bounding of collections (the support-function semantics)
    # ------------------------------------------------------------------

    def fits_under_diagonal(self) -> bool:
        """Does the region lie entirely on or below the ``vt = tt`` line?

        This is the paper's Figure 4(b) criterion for bounding a node with
        a stair shape instead of a rectangle.
        """
        if self.stair:
            return True
        return self.vt_hi <= self.tt_lo

    def union_bounds(self, other: "Region") -> "Region":
        """Minimum bounding region of two regions (rect or stair)."""
        return bounding_region([self, other])

    def __str__(self) -> str:
        shape = "stair" if self.stair else "rect"
        return (
            f"{shape}[tt {self.tt_lo}..{self.tt_hi}, vt {self.vt_lo}..{self.vt_hi}]"
        )


def bounding_region(regions: Sequence[Region] | Iterable[Region]) -> Region:
    """Minimum bounding region of a non-empty collection.

    Returns a stair shape when every member stays on or below the
    ``vt = tt`` diagonal (Figure 4(b)); otherwise the minimum bounding
    rectangle (Figure 4(a)).
    """
    regions = list(regions)
    if not regions:
        raise ValueError("cannot bound an empty collection of regions")
    tt_lo = min(r.tt_lo for r in regions)
    tt_hi = max(r.tt_hi for r in regions)
    vt_lo = min(r.vt_lo for r in regions)
    if all(r.fits_under_diagonal() for r in regions):
        bound = Region.make(tt_lo, tt_hi, vt_lo, tt_hi, stair=True)
    else:
        vt_hi = max(r.vt_hi for r in regions)
        bound = Region.make(tt_lo, tt_hi, vt_lo, vt_hi, stair=False)
    assert bound is not None
    return bound


def union_area(regions: Sequence[Region]) -> int:
    """Exact area of the union, by sweeping transaction-time columns.

    Used by tree-quality benchmarks to measure *dead space* (bounding area
    minus union area).  Linear in the transaction-time span, so intended
    for analysis rather than the hot path.
    """
    if not regions:
        return 0
    t_lo = min(r.tt_lo for r in regions)
    t_hi = max(r.tt_hi for r in regions)
    total = 0
    for t in range(t_lo, t_hi + 1):
        intervals = sorted(
            (r.vt_lo, r.vt_end_at(t))
            for r in regions
            if r.tt_lo <= t <= r.tt_hi and r.vt_lo <= r.vt_end_at(t)
        )
        cur_lo: Optional[int] = None
        cur_hi = 0
        for lo, hi in intervals:
            if cur_lo is None:
                cur_lo, cur_hi = lo, hi
            elif lo <= cur_hi + 1:
                cur_hi = max(cur_hi, hi)
            else:
                total += cur_hi - cur_lo + 1
                cur_lo, cur_hi = lo, hi
        if cur_lo is not None:
            total += cur_hi - cur_lo + 1
    return total
