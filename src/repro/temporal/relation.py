"""Bitemporal relation semantics (insert / logical delete / modify).

This module implements the update semantics of Section 2 directly on
in-memory tuples, independent of the DBMS server.  It is both a reference
implementation (the linear-scan oracle the index tests compare against)
and the substrate for the EmpDep examples of Tables 1 and 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Optional, Sequence

from repro.temporal.chronon import Chronon, Clock, Granularity
from repro.temporal.extent import TimeExtent
from repro.temporal.regions import Region
from repro.temporal.variables import NOW, UC


@dataclass
class BitemporalTuple:
    """A tuple of non-temporal values plus its 4TS time extent."""

    values: Mapping[str, object]
    extent: TimeExtent
    tuple_id: int = -1

    def region(self, now: Chronon) -> Region:
        return self.extent.region(now)


class BitemporalRelation:
    """An append-only bitemporal relation with 4TS semantics.

    Tuples are never physically removed: deletion freezes the transaction
    time, and modification is a deletion followed by an insertion, exactly
    as in the paper's EmpDep walk-through.
    """

    def __init__(
        self,
        columns: Sequence[str],
        clock: Optional[Clock] = None,
        granularity: Granularity = Granularity.DAY,
    ) -> None:
        self.columns = tuple(columns)
        self.clock = clock if clock is not None else Clock(granularity=granularity)
        self._tuples: list[BitemporalTuple] = []

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[BitemporalTuple]:
        return iter(self._tuples)

    @property
    def now(self) -> Chronon:
        return self.clock.now

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(
        self,
        values: Mapping[str, object],
        vt_begin: Chronon,
        vt_end=NOW,
    ) -> BitemporalTuple:
        """Insert *values* valid over ``[vt_begin, vt_end]``.

        The transaction time is fixed by the insertion constraints:
        ``TTbegin = current time`` and ``TTend = UC``.
        """
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns: {sorted(unknown)}")
        extent = TimeExtent(self.now, UC, vt_begin, vt_end)
        extent.validate_insertion(self.now)
        row = BitemporalTuple(dict(values), extent, tuple_id=len(self._tuples))
        self._tuples.append(row)
        return row

    def delete(self, predicate: Callable[[BitemporalTuple], bool]) -> int:
        """Logically delete every *current* tuple matching *predicate*.

        Returns the number of tuples deleted.  Deletion replaces
        ``TTend = UC`` with ``current time - 1`` (closed intervals).
        """
        count = 0
        for i, row in enumerate(self._tuples):
            if row.extent.is_current and predicate(row):
                new_extent = row.extent.logically_deleted(self.now)
                self._tuples[i] = BitemporalTuple(
                    row.values, new_extent, tuple_id=row.tuple_id
                )
                count += 1
        return count

    def modify(
        self,
        predicate: Callable[[BitemporalTuple], bool],
        new_values: Mapping[str, object],
        vt_begin: Chronon,
        vt_end=NOW,
    ) -> int:
        """Modify matching current tuples: a deletion plus an insertion."""
        count = self.delete(predicate)
        for _ in range(count):
            self.insert(new_values, vt_begin, vt_end)
        return count

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def current_state(self) -> list[BitemporalTuple]:
        """Tuples in the current database state (TTend = UC)."""
        return [row for row in self._tuples if row.extent.is_current]

    def overlapping(self, query: TimeExtent) -> list[BitemporalTuple]:
        """All tuples whose bitemporal region overlaps *query*'s region.

        This is the linear-scan evaluation of the paper's ``Overlaps()``
        strategy function, used as the oracle for the GR-tree.
        """
        now = self.now
        query_region = query.region(now)
        return [
            row for row in self._tuples if row.region(now).overlaps(query_region)
        ]

    def timeslice(self, valid_time: Chronon, transaction_time: Chronon) -> list[
        BitemporalTuple
    ]:
        """Who was true at *valid_time* according to our knowledge at
        *transaction_time*?  (The paper's Julie query of Section 5.1.)
        """
        now = self.now
        return [
            row
            for row in self._tuples
            if row.region(now).contains_point(transaction_time, valid_time)
        ]

    def timeslice_naive(
        self, valid_time: Chronon, transaction_time: Chronon
    ) -> list[BitemporalTuple]:
        """The *incorrect* timeslice that treats the valid- and
        transaction-time intervals separately (Section 5.1's anomaly).

        With ``VTend = NOW`` resolved against the current time instead of
        against the tuple's own transaction-time end, a stair-shaped tuple
        like Julie's wrongly qualifies.  Kept for the Table 3 / Figure 8
        reproduction.
        """
        now = self.now
        result = []
        for row in self._tuples:
            ext = row.extent
            tt_end = now if ext.tt_end is UC else ext.tt_end
            vt_end = now if ext.vt_end is NOW else ext.vt_end
            if (
                ext.tt_begin <= transaction_time <= tt_end
                and ext.vt_begin <= valid_time <= vt_end
            ):
                result.append(row)
        return result

    # ------------------------------------------------------------------
    # Rendering (Table 1 reproduction)
    # ------------------------------------------------------------------

    def to_table(self) -> list[dict[str, str]]:
        """Render as rows of the paper's 4TS table layout."""
        gran = self.clock.granularity
        rows = []
        for row in self._tuples:
            rendered = {col: str(row.values.get(col, "")) for col in self.columns}
            ext = row.extent

            def fmt(value):
                from repro.temporal.chronon import format_chronon
                from repro.temporal.variables import is_ground

                return (
                    format_chronon(value, gran) if is_ground(value) else value.name
                )

            rendered["TTbegin"] = fmt(ext.tt_begin)
            rendered["TTend"] = fmt(ext.tt_end)
            rendered["VTbegin"] = fmt(ext.vt_begin)
            rendered["VTend"] = fmt(ext.vt_end)
            rows.append(rendered)
        return rows

    def format_table(self) -> str:
        """Pretty-print the relation in the style of the paper's Table 1."""
        header = list(self.columns) + ["TTbegin", "TTend", "VTbegin", "VTend"]
        rows = self.to_table()
        widths = {
            col: max(len(col), *(len(r[col]) for r in rows)) if rows else len(col)
            for col in header
        }
        lines = [" | ".join(col.ljust(widths[col]) for col in header)]
        lines.append("-+-".join("-" * widths[col] for col in header))
        for r in rows:
            lines.append(" | ".join(r[col].ljust(widths[col]) for col in header))
        return "\n".join(lines)


def build_empdep(clock: Optional[Clock] = None) -> BitemporalRelation:
    """Construct the paper's Table 1 EmpDep relation, replaying history.

    The granularity is a month and the final current time is 9/97; the six
    tuples arise from inserts, a delete (Tom), and a modification (Julie),
    exactly as described in Section 2.
    """
    from repro.temporal.chronon import parse_chronon

    def month(text: str) -> Chronon:
        return parse_chronon(text, Granularity.MONTH)

    if clock is None:
        clock = Clock(now=month("3/97"), granularity=Granularity.MONTH)
    rel = BitemporalRelation(["Employee", "Department"], clock=clock)

    # 3/97: Tom's tuple is recorded ahead of its validity; Julie and
    # Michelle's facts become both valid and current.
    clock.set(month("3/97"))
    rel.insert({"Employee": "Tom", "Department": "Management"},
               month("6/97"), month("8/97"))
    rel.insert({"Employee": "Julie", "Department": "Sales"}, month("3/97"))

    # 4/97: John's past fact [3/97, 5/97] is recorded late.
    clock.set(month("4/97"))
    rel.insert({"Employee": "John", "Department": "Advertising"},
               month("3/97"), month("5/97"))

    # 5/97: Jane joins Sales; Michelle's 3/97 fact is recorded late.
    clock.set(month("5/97"))
    rel.insert({"Employee": "Jane", "Department": "Sales"}, month("5/97"))
    rel.insert({"Employee": "Michelle", "Department": "Management"},
               month("3/97"))

    # 8/97: Tom's tuple is logically deleted and Julie's is modified,
    # freezing both old transaction times at 8/97 - 1 = 7/97.
    clock.set(month("8/97"))
    rel.delete(lambda row: row.values["Employee"] == "Tom")
    rel.modify(
        lambda row: row.values["Employee"] == "Julie",
        {"Employee": "Julie", "Department": "Sales"},
        month("3/97"),
        month("7/97"),
    )

    clock.set(month("9/97"))
    return rel
