"""The four-timestamp (4TS) time extent of a bitemporal tuple.

A :class:`TimeExtent` carries the four time attributes of TQuel's 4TS
format -- ``TTbegin``, ``TTend``, ``VTbegin``, ``VTend`` -- where ``TTend``
may be the variable ``UC`` and ``VTend`` may be the variable ``NOW``
(Section 2 of the paper).  The six qualitatively different combinations of
the paper's Figure 2 are exposed as :class:`Case`, and resolution against a
current time yields the :class:`~repro.temporal.regions.Region` geometry of
Figure 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.temporal.chronon import Chronon, Granularity, format_chronon, parse_chronon
from repro.temporal.regions import Region
from repro.temporal.variables import NOW, UC, Timestamp, is_ground


class ExtentError(ValueError):
    """A time extent violates the 4TS well-formedness constraints."""


class Case(enum.IntEnum):
    """The six combinations of time attributes (the paper's Figure 2)."""

    #: (tt1, UC,  vt1, vt2) -- rectangle growing in transaction time.
    GROWING_RECTANGLE = 1
    #: (tt1, tt2, vt1, vt2) -- static rectangle.
    STATIC_RECTANGLE = 2
    #: (tt1, UC,  vt1, NOW), tt1 = vt1 -- growing stair shape.
    GROWING_STAIR = 3
    #: (tt1, tt2, vt1, NOW), tt1 = vt1 -- stopped stair shape.
    STATIC_STAIR = 4
    #: (tt1, UC,  vt1, NOW), tt1 > vt1 -- growing stair, high first step.
    GROWING_STAIR_HIGH_STEP = 5
    #: (tt1, tt2, vt1, NOW), tt1 > vt1 -- stopped stair, high first step.
    STATIC_STAIR_HIGH_STEP = 6

    @property
    def growing(self) -> bool:
        """Does the region keep extending as time passes?"""
        return self in (
            Case.GROWING_RECTANGLE,
            Case.GROWING_STAIR,
            Case.GROWING_STAIR_HIGH_STEP,
        )

    @property
    def stair_shaped(self) -> bool:
        return self.value >= 3


@dataclass(frozen=True)
class TimeExtent:
    """An immutable 4TS time extent.

    The constructor validates well-formedness only (interval ordering and
    the variable-placement rules); the *insertion-time* constraints, which
    additionally involve the current time, are checked by
    :meth:`validate_insertion`.
    """

    tt_begin: Chronon
    tt_end: Timestamp
    vt_begin: Chronon
    vt_end: Timestamp

    def __post_init__(self) -> None:
        if not is_ground(self.tt_begin):
            raise ExtentError("TTbegin must be a ground value")
        if not is_ground(self.vt_begin):
            raise ExtentError("VTbegin must be a ground value")
        if self.tt_end is NOW or self.vt_end is UC:
            raise ExtentError("TTend may only be UC and VTend may only be NOW")
        if is_ground(self.tt_end) and self.tt_end < self.tt_begin:
            raise ExtentError(
                f"TTbegin <= TTend violated: {self.tt_begin} > {self.tt_end}"
            )
        if is_ground(self.vt_end) and self.vt_end < self.vt_begin:
            raise ExtentError(
                f"VTbegin <= VTend violated: {self.vt_begin} > {self.vt_end}"
            )
        if self.vt_end is NOW and self.vt_begin > self.tt_begin:
            # Otherwise the valid-time end (which tracks time from TTbegin
            # onwards) would start out below the valid-time start.
            raise ExtentError(
                "a NOW-relative valid time requires VTbegin <= TTbegin"
            )

    # ------------------------------------------------------------------
    # Classification and constraints
    # ------------------------------------------------------------------

    @property
    def case(self) -> Case:
        """Classify into the six cases of the paper's Figure 2."""
        growing = self.tt_end is UC
        if self.vt_end is not NOW:
            return Case.GROWING_RECTANGLE if growing else Case.STATIC_RECTANGLE
        if self.tt_begin == self.vt_begin:
            return Case.GROWING_STAIR if growing else Case.STATIC_STAIR
        return (
            Case.GROWING_STAIR_HIGH_STEP
            if growing
            else Case.STATIC_STAIR_HIGH_STEP
        )

    @property
    def is_current(self) -> bool:
        """Is the tuple part of the current database state (TTend = UC)?"""
        return self.tt_end is UC

    @property
    def is_now_relative(self) -> bool:
        """Does either end track the current time?"""
        return self.tt_end is UC or self.vt_end is NOW

    def validate_insertion(self, current_time: Chronon) -> None:
        """Check the paper's insertion constraints at *current_time*.

        Transaction time: ``TTbegin = current time`` and ``TTend = UC``.
        Valid time: ``VTbegin <= VTend``, and ``VTbegin <= current time``
        when ``VTend = NOW``.
        """
        if self.tt_end is not UC:
            raise ExtentError("inserted tuples must have TTend = UC")
        if self.tt_begin != current_time:
            raise ExtentError(
                f"inserted tuples must have TTbegin = current time "
                f"({current_time}), got {self.tt_begin}"
            )
        if self.vt_end is NOW and self.vt_begin > current_time:
            raise ExtentError(
                "VTbegin must not exceed the current time when VTend = NOW"
            )

    def logically_deleted(self, current_time: Chronon) -> "TimeExtent":
        """The extent after a logical deletion at *current_time*.

        Deletion freezes the transaction time at ``current_time - 1``
        (closed intervals); the tuple itself is never physically removed.
        """
        if self.tt_end is not UC:
            raise ExtentError("only current tuples (TTend = UC) can be deleted")
        if current_time <= self.tt_begin:
            raise ExtentError(
                "cannot delete a tuple during the chronon it was inserted"
            )
        return TimeExtent(self.tt_begin, current_time - 1, self.vt_begin, self.vt_end)

    # ------------------------------------------------------------------
    # Resolution into geometry
    # ------------------------------------------------------------------

    def resolve(self, now: Chronon) -> tuple[Chronon, Chronon]:
        """Resolve (TTend, VTend) against *now* per the paper's algorithm::

            IF TTend is equal to UC  THEN set TTend to the current time
            IF VTend is equal to NOW THEN set VTend to TTend
        """
        tt_end = now if self.tt_end is UC else self.tt_end
        vt_end = tt_end if self.vt_end is NOW else self.vt_end
        return tt_end, vt_end

    def region(self, now: Chronon) -> Region:
        """The bitemporal region of Figure 1, evaluated at time *now*."""
        tt_end = now if self.tt_end is UC else self.tt_end
        tt_end = max(tt_end, self.tt_begin)
        vt_end = tt_end if self.vt_end is NOW else self.vt_end
        region = Region.make(
            self.tt_begin,
            tt_end,
            self.vt_begin,
            vt_end,
            stair=self.vt_end is NOW,
        )
        if region is None:  # pragma: no cover - excluded by validation
            raise ExtentError(f"extent {self} resolves to an empty region")
        return region

    # ------------------------------------------------------------------
    # Text representation (the opaque type's external format)
    # ------------------------------------------------------------------

    def to_text(self, granularity: Granularity = Granularity.DAY) -> str:
        """Render as ``"tt1, tt2|UC, vt1, vt2|NOW"`` (cf. Section 5.2)."""

        def fmt(value: Timestamp) -> str:
            return value.name if not is_ground(value) else format_chronon(
                value, granularity
            )

        return ", ".join(
            fmt(v) for v in (self.tt_begin, self.tt_end, self.vt_begin, self.vt_end)
        )

    @classmethod
    def from_text(
        cls, text: str, granularity: Granularity = Granularity.DAY
    ) -> "TimeExtent":
        """Parse the textual form, e.g. ``"12/10/95, UC, 12/10/95, NOW"``."""
        parts = [p.strip() for p in text.split(",")]
        if len(parts) != 4:
            raise ExtentError(
                f"a time extent needs four comma-separated timestamps, got {text!r}"
            )

        def parse(token: str, variable) -> Timestamp:
            if variable is not None and token.upper() == variable.name:
                return variable
            return parse_chronon(token, granularity)

        return cls(
            parse(parts[0], None),
            parse(parts[1], UC),
            parse(parts[2], None),
            parse(parts[3], NOW),
        )

    @classmethod
    def from_values(
        cls,
        tt_begin: Timestamp,
        tt_end: Timestamp,
        vt_begin: Timestamp,
        vt_end: Timestamp,
    ) -> "TimeExtent":
        """Alias constructor mirroring the 4TS column order."""
        return cls(tt_begin, tt_end, vt_begin, vt_end)

    def __str__(self) -> str:
        return (
            f"[{self.tt_begin}, {self.tt_end}] x [{self.vt_begin}, {self.vt_end}]"
        )
