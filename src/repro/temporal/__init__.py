"""Bitemporal data-model substrate.

This subpackage implements the data model of Section 2 of the paper:
four-timestamp (4TS) bitemporal tuples, the ``UC`` and ``NOW`` variables,
the six qualitatively different region cases, and the two-dimensional
region geometry (rectangles and stair shapes) that the GR-tree indexes.
"""

from repro.temporal.chronon import (
    Chronon,
    Clock,
    Granularity,
    format_chronon,
    parse_chronon,
)
from repro.temporal.extent import Case, TimeExtent
from repro.temporal.regions import Region, bounding_region
from repro.temporal.relation import BitemporalRelation, BitemporalTuple
from repro.temporal.variables import NOW, UC, Timestamp, is_ground

__all__ = [
    "Chronon",
    "Clock",
    "Granularity",
    "format_chronon",
    "parse_chronon",
    "Case",
    "TimeExtent",
    "Region",
    "bounding_region",
    "BitemporalRelation",
    "BitemporalTuple",
    "NOW",
    "UC",
    "Timestamp",
    "is_ground",
]
