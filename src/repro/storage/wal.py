"""Write-ahead logging and recovery for the smart-blob space.

The paper (Section 5.3) notes that when index data lives in an sbspace,
the server's log manager -- not the DataBlade -- provides recovery.  This
module is that log manager: smart-blob page writes and large-object
lifecycle events are logged before they are applied, transactions can be
rolled back from before-images at runtime, and :meth:`WriteAheadLog.recover`
reconstructs the committed state after a simulated crash (redo from the
log onto an emptied space).

For replication (``repro.repl``) the log additionally carries *logical*
records: DDL statement text and row-level insert/delete/update images.
Logical records are only appended while :attr:`WriteAheadLog.ship_rows`
is on (a served primary); an embedded engine pays nothing for them.
Physical sbspace records and logical records share one LSN sequence, so
a replica sees a gap-free stream and can detect drops by LSN alone.
"""

from __future__ import annotations

import base64
import enum
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

#: Reserved transaction id for auto-committed records (DDL): statement
#: text is logged only after the statement succeeded, so these records
#: are committed by construction.  Real transaction ids start at 1.
DDL_TXN = 0


class RecordKind(enum.Enum):
    BEGIN = "begin"
    COMMIT = "commit"
    ABORT = "abort"
    CREATE_LO = "create_lo"
    DROP_LO = "drop_lo"
    PAGE_ALLOC = "page_alloc"
    PAGE_FREE = "page_free"
    PAGE_WRITE = "page_write"
    # Logical replication records (never replayed into an sbspace).
    ROW_INSERT = "row_insert"
    ROW_DELETE = "row_delete"
    ROW_UPDATE = "row_update"
    DDL = "ddl"


#: Kinds that :meth:`WriteAheadLog.recover` and ``Sbspace.rollback``
#: replay/undo physically; everything else is logical shipping payload.
SPACE_KINDS = frozenset(
    {
        RecordKind.CREATE_LO,
        RecordKind.DROP_LO,
        RecordKind.PAGE_ALLOC,
        RecordKind.PAGE_FREE,
        RecordKind.PAGE_WRITE,
    }
)


@dataclass(frozen=True)
class LogRecord:
    lsn: int
    txn_id: int
    kind: RecordKind
    lo_handle: Optional[str] = None
    page_id: Optional[int] = None
    before: Optional[bytes] = None
    after: Optional[bytes] = None
    #: Logical fields (ROW_* / DDL records only).
    table: Optional[str] = None
    rowid: Optional[int] = None
    #: Column values in wire-text form (each via ``data_type.export_text``).
    row: Optional[dict] = None
    sql: Optional[str] = None

    # -- wire form ---------------------------------------------------------
    #
    # Replication ships records as JSON; bytes fields travel base64-coded.
    # ``from_dict`` is strict about the kind: an unknown kind means the
    # peer speaks a newer log format, and silently skipping records would
    # corrupt the replica, so it must be an explicit error.

    def to_dict(self) -> dict:
        payload = {
            "lsn": self.lsn,
            "txn_id": self.txn_id,
            "kind": self.kind.value,
        }
        if self.lo_handle is not None:
            payload["lo_handle"] = self.lo_handle
        if self.page_id is not None:
            payload["page_id"] = self.page_id
        if self.before is not None:
            payload["before"] = base64.b64encode(self.before).decode("ascii")
        if self.after is not None:
            payload["after"] = base64.b64encode(self.after).decode("ascii")
        if self.table is not None:
            payload["table"] = self.table
        if self.rowid is not None:
            payload["rowid"] = self.rowid
        if self.row is not None:
            payload["row"] = dict(self.row)
        if self.sql is not None:
            payload["sql"] = self.sql
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "LogRecord":
        try:
            kind = RecordKind(payload["kind"])
        except (KeyError, ValueError):
            raise ValueError(
                f"unknown log record kind: {payload.get('kind')!r}"
            ) from None
        before = payload.get("before")
        after = payload.get("after")
        return cls(
            lsn=int(payload["lsn"]),
            txn_id=int(payload["txn_id"]),
            kind=kind,
            lo_handle=payload.get("lo_handle"),
            page_id=payload.get("page_id"),
            before=None if before is None else base64.b64decode(before),
            after=None if after is None else base64.b64decode(after),
            table=payload.get("table"),
            rowid=payload.get("rowid"),
            row=payload.get("row"),
            sql=payload.get("sql"),
        )


class WriteAheadLog:
    """An append-only log with runtime rollback and crash recovery."""

    def __init__(self, faults=None) -> None:
        self._records: List[LogRecord] = []
        self._active: set[int] = set()
        self._committed: set[int] = set()
        self._aborted: set[int] = set()
        self._kind_counts: dict[str, int] = {}
        #: Optional :class:`repro.faults.FaultRegistry`; ``None`` keeps
        #: the append path free of any fault-injection cost.
        self.faults = faults
        #: When on, the executor logs row images and the server logs DDL
        #: text, making the log a complete logical history from LSN 0.
        #: Served primaries turn this on at boot; embedded engines don't.
        self.ship_rows = False
        self._listeners: List[Callable[[LogRecord], None]] = []

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def add_listener(self, listener: Callable[[LogRecord], None]) -> None:
        """Call *listener* after every append (the shipper's wake-up)."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[LogRecord], None]) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _append(self, txn_id: int, kind: RecordKind, **fields) -> LogRecord:
        if self.faults is not None:
            self.faults.hit("wal.append")
        record = LogRecord(lsn=len(self._records), txn_id=txn_id, kind=kind, **fields)
        self._records.append(record)
        key = kind.value
        self._kind_counts[key] = self._kind_counts.get(key, 0) + 1
        for listener in self._listeners:
            listener(record)
        return record

    def log_begin(self, txn_id: int) -> None:
        if txn_id in self._active:
            raise ValueError(f"transaction {txn_id} already active")
        if txn_id in self._committed or txn_id in self._aborted:
            raise ValueError(f"transaction id {txn_id} was already used")
        self._active.add(txn_id)
        self._append(txn_id, RecordKind.BEGIN)

    def log_commit(self, txn_id: int) -> None:
        self._require_active(txn_id)
        # The 'fsync' failpoint models the flush that makes the COMMIT
        # record durable: a crash here leaves the transaction active in
        # the log, so recovery discards it -- the commit never happened.
        if self.faults is not None:
            self.faults.hit("wal.fsync")
        self._active.discard(txn_id)
        self._committed.add(txn_id)
        self._append(txn_id, RecordKind.COMMIT)

    def log_abort(self, txn_id: int) -> None:
        self._require_active(txn_id)
        self._active.discard(txn_id)
        self._aborted.add(txn_id)
        self._append(txn_id, RecordKind.ABORT)

    def log_create_lo(self, txn_id: int, lo_handle: str) -> None:
        self._require_active(txn_id)
        self._append(txn_id, RecordKind.CREATE_LO, lo_handle=lo_handle)

    def log_drop_lo(self, txn_id: int, lo_handle: str) -> None:
        self._require_active(txn_id)
        self._append(txn_id, RecordKind.DROP_LO, lo_handle=lo_handle)

    def log_page_alloc(self, txn_id: int, lo_handle: str, page_id: int) -> None:
        self._require_active(txn_id)
        self._append(txn_id, RecordKind.PAGE_ALLOC, lo_handle=lo_handle, page_id=page_id)

    def log_page_free(
        self, txn_id: int, lo_handle: str, page_id: int, before: bytes
    ) -> None:
        self._require_active(txn_id)
        self._append(
            txn_id,
            RecordKind.PAGE_FREE,
            lo_handle=lo_handle,
            page_id=page_id,
            before=before,
        )

    def log_page_write(
        self, txn_id: int, lo_handle: str, page_id: int, before: bytes, after: bytes
    ) -> None:
        self._require_active(txn_id)
        self._append(
            txn_id,
            RecordKind.PAGE_WRITE,
            lo_handle=lo_handle,
            page_id=page_id,
            before=before,
            after=after,
        )

    # -- logical records (replication) ---------------------------------

    def log_row_insert(
        self, txn_id: int, table: str, rowid: int, row: dict
    ) -> None:
        self._require_active(txn_id)
        self._append(
            txn_id, RecordKind.ROW_INSERT, table=table, rowid=rowid, row=row
        )

    def log_row_delete(self, txn_id: int, table: str, rowid: int) -> None:
        self._require_active(txn_id)
        self._append(txn_id, RecordKind.ROW_DELETE, table=table, rowid=rowid)

    def log_row_update(
        self, txn_id: int, table: str, rowid: int, row: dict
    ) -> None:
        self._require_active(txn_id)
        self._append(
            txn_id, RecordKind.ROW_UPDATE, table=table, rowid=rowid, row=row
        )

    def log_ddl(self, sql: str) -> None:
        """Log a successful DDL statement verbatim (auto-committed)."""
        self._append(DDL_TXN, RecordKind.DDL, sql=sql)

    def _require_active(self, txn_id: int) -> None:
        if txn_id not in self._active:
            raise ValueError(f"transaction {txn_id} is not active")

    # ------------------------------------------------------------------
    # Reading back
    # ------------------------------------------------------------------

    def records(self) -> Iterable[LogRecord]:
        return iter(self._records)

    def records_from(self, lsn: int) -> List[LogRecord]:
        """Records with ``record.lsn >= lsn`` (the catch-up stream)."""
        if lsn <= 0:
            return list(self._records)
        return self._records[lsn:]

    def records_for(self, txn_id: int) -> List[LogRecord]:
        return [r for r in self._records if r.txn_id == txn_id]

    def is_committed(self, txn_id: int) -> bool:
        return txn_id == DDL_TXN or txn_id in self._committed

    def is_active(self, txn_id: int) -> bool:
        return txn_id in self._active

    def active_transactions(self) -> frozenset[int]:
        """Transactions with a BEGIN but no COMMIT/ABORT yet.

        The crash harness reads this before recovery to model the lock
        table: locks are volatile, so whatever the crashed transactions
        held simply vanishes."""
        return frozenset(self._active)

    def last_lsn(self) -> int:
        """LSN of the newest record; ``-1`` for an empty log."""
        return len(self._records) - 1

    def __len__(self) -> int:
        return len(self._records)

    def stats(self) -> dict:
        """Counters pulled by the observability metrics collectors."""
        stats = {
            "records": len(self._records),
            "commits": len(self._committed),
            "aborts": len(self._aborted),
            "active": len(self._active),
            "last_lsn": len(self._records) - 1,
        }
        for kind, count in self._kind_counts.items():
            stats[f"kind.{kind}"] = count
        return stats

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(self, space) -> int:
        """Rebuild *space* (an :class:`~repro.storage.sbspace.Sbspace`)
        to the committed state by redoing the log from the beginning.

        Transactions that were still active at the crash are treated as
        aborted (their records are skipped), and logical records are --
        they carry no sbspace state.  Returns the number of records
        replayed.
        """
        space._reset_for_recovery()
        replayed = 0
        for record in self._records:
            if record.kind not in SPACE_KINDS:
                continue
            if record.txn_id not in self._committed:
                continue
            space._redo(record)
            replayed += 1
        # Whatever was active at crash time is now aborted.
        self._aborted |= self._active
        self._active.clear()
        space._finish_recovery()
        return replayed
