"""Write-ahead logging and recovery for the smart-blob space.

The paper (Section 5.3) notes that when index data lives in an sbspace,
the server's log manager -- not the DataBlade -- provides recovery.  This
module is that log manager: smart-blob page writes and large-object
lifecycle events are logged before they are applied, transactions can be
rolled back from before-images at runtime, and :meth:`WriteAheadLog.recover`
reconstructs the committed state after a simulated crash (redo from the
log onto an emptied space).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional


class RecordKind(enum.Enum):
    BEGIN = "begin"
    COMMIT = "commit"
    ABORT = "abort"
    CREATE_LO = "create_lo"
    DROP_LO = "drop_lo"
    PAGE_ALLOC = "page_alloc"
    PAGE_FREE = "page_free"
    PAGE_WRITE = "page_write"


@dataclass(frozen=True)
class LogRecord:
    lsn: int
    txn_id: int
    kind: RecordKind
    lo_handle: Optional[str] = None
    page_id: Optional[int] = None
    before: Optional[bytes] = None
    after: Optional[bytes] = None


class WriteAheadLog:
    """An append-only log with runtime rollback and crash recovery."""

    def __init__(self, faults=None) -> None:
        self._records: List[LogRecord] = []
        self._active: set[int] = set()
        self._committed: set[int] = set()
        self._aborted: set[int] = set()
        #: Optional :class:`repro.faults.FaultRegistry`; ``None`` keeps
        #: the append path free of any fault-injection cost.
        self.faults = faults

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def _append(self, txn_id: int, kind: RecordKind, **fields) -> LogRecord:
        if self.faults is not None:
            self.faults.hit("wal.append")
        record = LogRecord(lsn=len(self._records), txn_id=txn_id, kind=kind, **fields)
        self._records.append(record)
        return record

    def log_begin(self, txn_id: int) -> None:
        if txn_id in self._active:
            raise ValueError(f"transaction {txn_id} already active")
        if txn_id in self._committed or txn_id in self._aborted:
            raise ValueError(f"transaction id {txn_id} was already used")
        self._active.add(txn_id)
        self._append(txn_id, RecordKind.BEGIN)

    def log_commit(self, txn_id: int) -> None:
        self._require_active(txn_id)
        # The 'fsync' failpoint models the flush that makes the COMMIT
        # record durable: a crash here leaves the transaction active in
        # the log, so recovery discards it -- the commit never happened.
        if self.faults is not None:
            self.faults.hit("wal.fsync")
        self._active.discard(txn_id)
        self._committed.add(txn_id)
        self._append(txn_id, RecordKind.COMMIT)

    def log_abort(self, txn_id: int) -> None:
        self._require_active(txn_id)
        self._active.discard(txn_id)
        self._aborted.add(txn_id)
        self._append(txn_id, RecordKind.ABORT)

    def log_create_lo(self, txn_id: int, lo_handle: str) -> None:
        self._require_active(txn_id)
        self._append(txn_id, RecordKind.CREATE_LO, lo_handle=lo_handle)

    def log_drop_lo(self, txn_id: int, lo_handle: str) -> None:
        self._require_active(txn_id)
        self._append(txn_id, RecordKind.DROP_LO, lo_handle=lo_handle)

    def log_page_alloc(self, txn_id: int, lo_handle: str, page_id: int) -> None:
        self._require_active(txn_id)
        self._append(txn_id, RecordKind.PAGE_ALLOC, lo_handle=lo_handle, page_id=page_id)

    def log_page_free(
        self, txn_id: int, lo_handle: str, page_id: int, before: bytes
    ) -> None:
        self._require_active(txn_id)
        self._append(
            txn_id,
            RecordKind.PAGE_FREE,
            lo_handle=lo_handle,
            page_id=page_id,
            before=before,
        )

    def log_page_write(
        self, txn_id: int, lo_handle: str, page_id: int, before: bytes, after: bytes
    ) -> None:
        self._require_active(txn_id)
        self._append(
            txn_id,
            RecordKind.PAGE_WRITE,
            lo_handle=lo_handle,
            page_id=page_id,
            before=before,
            after=after,
        )

    def _require_active(self, txn_id: int) -> None:
        if txn_id not in self._active:
            raise ValueError(f"transaction {txn_id} is not active")

    # ------------------------------------------------------------------
    # Reading back
    # ------------------------------------------------------------------

    def records(self) -> Iterable[LogRecord]:
        return iter(self._records)

    def records_for(self, txn_id: int) -> List[LogRecord]:
        return [r for r in self._records if r.txn_id == txn_id]

    def is_committed(self, txn_id: int) -> bool:
        return txn_id in self._committed

    def is_active(self, txn_id: int) -> bool:
        return txn_id in self._active

    def active_transactions(self) -> frozenset[int]:
        """Transactions with a BEGIN but no COMMIT/ABORT yet.

        The crash harness reads this before recovery to model the lock
        table: locks are volatile, so whatever the crashed transactions
        held simply vanishes."""
        return frozenset(self._active)

    def __len__(self) -> int:
        return len(self._records)

    def stats(self) -> dict:
        """Counters pulled by the observability metrics collectors."""
        return {
            "records": len(self._records),
            "commits": len(self._committed),
            "aborts": len(self._aborted),
            "active": len(self._active),
        }

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(self, space) -> int:
        """Rebuild *space* (an :class:`~repro.storage.sbspace.Sbspace`)
        to the committed state by redoing the log from the beginning.

        Transactions that were still active at the crash are treated as
        aborted (their records are skipped).  Returns the number of
        records replayed.
        """
        space._reset_for_recovery()
        replayed = 0
        for record in self._records:
            if record.txn_id not in self._committed:
                continue
            space._redo(record)
            replayed += 1
        # Whatever was active at crash time is now aborted.
        self._aborted |= self._active
        self._active.clear()
        space._finish_recovery()
        return replayed
