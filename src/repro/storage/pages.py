"""Fixed-size pages and the page-store interface.

Index nodes are serialized into fixed-size pages (one node per disk page,
as in the paper's Section 3).  A :class:`PageStore` is anything that can
persist numbered pages; implementations include the in-memory store used
by smart blobs and the OS-file store of Section 5.3.
"""

from __future__ import annotations

import abc
import struct
import zlib
from typing import Dict

#: Default page size in bytes.  Small relative to real systems so that
#: trees of interesting height arise from modest datasets.
PAGE_SIZE = 4096


class PageStore(abc.ABC):
    """Persistence interface for numbered fixed-size pages."""

    def __init__(self, page_size: int = PAGE_SIZE) -> None:
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self.page_size = page_size

    @abc.abstractmethod
    def read_page(self, page_id: int) -> bytes:
        """Return the page's bytes (exactly ``page_size`` long)."""

    @abc.abstractmethod
    def write_page(self, page_id: int, data: bytes) -> None:
        """Persist *data* (at most ``page_size`` bytes) as the page."""

    @abc.abstractmethod
    def allocate_page(self) -> int:
        """Reserve a fresh page id."""

    @abc.abstractmethod
    def free_page(self, page_id: int) -> None:
        """Release a page for reuse."""

    @property
    @abc.abstractmethod
    def page_count(self) -> int:
        """Number of live (allocated, not freed) pages."""

    def _check_data(self, data: bytes) -> bytes:
        size = len(data)
        if size > self.page_size:
            raise ValueError(
                f"page overflow: {size} bytes > page size {self.page_size}"
            )
        if size == self.page_size:
            # Already exactly one page: skip the redundant ljust copy
            # (the GR-tree serializer emits full pages on the hot path).
            return data if isinstance(data, bytes) else bytes(data)
        return bytes(data).ljust(self.page_size, b"\x00")


class InMemoryPageStore(PageStore):
    """A page store held in memory; the substrate of smart blobs.

    Freed page ids are recycled in LIFO order, mirroring the free-list
    behaviour of a real space manager.
    """

    def __init__(self, page_size: int = PAGE_SIZE) -> None:
        super().__init__(page_size)
        self._pages: Dict[int, bytes] = {}
        self._free: list[int] = []
        self._next_id = 0

    def read_page(self, page_id: int) -> bytes:
        try:
            return self._pages[page_id]
        except KeyError:
            raise KeyError(f"page {page_id} is not allocated") from None

    def write_page(self, page_id: int, data: bytes) -> None:
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} is not allocated")
        self._pages[page_id] = self._check_data(data)

    def allocate_page(self) -> int:
        page_id = self._free.pop() if self._free else self._next_id
        if page_id == self._next_id:
            self._next_id += 1
        self._pages[page_id] = b"\x00" * self.page_size
        return page_id

    def free_page(self, page_id: int) -> None:
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} is not allocated")
        del self._pages[page_id]
        self._free.append(page_id)

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def snapshot(self) -> Dict[int, bytes]:
        """Copy of all live pages (used by crash-simulation tests)."""
        return dict(self._pages)

    def clear(self) -> None:
        """Drop every page -- simulates losing volatile state in a crash."""
        self._pages.clear()
        self._free.clear()
        self._next_id = 0


class PageChecksumError(RuntimeError):
    """A page failed checksum verification on read (torn/corrupt write)."""


_CRC = struct.Struct("<I")


class ChecksummedPageStore(PageStore):
    """Guard an inner store with a per-page CRC32 trailer.

    The paper's OS-file storage option offers no recovery services, so
    a torn page write would otherwise be served back silently as valid
    data.  This wrapper spends the last four bytes of every physical
    page on a CRC32 of the payload and verifies it on every read,
    turning silent corruption into a loud :class:`PageChecksumError`.
    (The sbspace option does not need this: its WAL redo pass rewrites
    the intended after-image over any torn page.)

    A page of all zeroes with a zero CRC field is a freshly allocated,
    never-written page and is considered valid.
    """

    def __init__(self, inner: PageStore) -> None:
        if inner.page_size <= _CRC.size:
            raise ValueError("inner page size too small for a CRC trailer")
        super().__init__(inner.page_size - _CRC.size)
        self.inner = inner
        self.verified_reads = 0
        self.checksum_failures = 0

    def read_page(self, page_id: int) -> bytes:
        raw = self.inner.read_page(page_id)
        data, trailer = raw[: -_CRC.size], raw[-_CRC.size :]
        (stored,) = _CRC.unpack(trailer)
        if stored == 0 and not any(data):
            return data  # freshly allocated, never written
        if zlib.crc32(data) != stored:
            self.checksum_failures += 1
            raise PageChecksumError(
                f"page {page_id} failed checksum verification "
                f"(torn or corrupt write)"
            )
        self.verified_reads += 1
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        data = self._check_data(data)
        self.inner.write_page(page_id, data + _CRC.pack(zlib.crc32(data)))

    def allocate_page(self) -> int:
        return self.inner.allocate_page()

    def free_page(self, page_id: int) -> None:
        self.inner.free_page(page_id)

    @property
    def page_count(self) -> int:
        return self.inner.page_count
