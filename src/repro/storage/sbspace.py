"""The smart-blob space (*sbspace*) and its large objects.

An sbspace stores *large objects* (smart blobs).  Per the paper's Section
5.3, the server provides automatic two-phase locking at large-object
granularity: a lock is acquired when an object is opened for reading or
writing, and released either when the object is closed or at transaction
end, depending on the lock mode and the isolation level.  The DataBlade
developer can vary only the *number* of large objects used for an index --
one for the whole tree (least concurrency, the paper's and our default),
one per node (large handles, costly opens), or something in between.

A :class:`SmartBlob` doubles as a :class:`~repro.storage.pages.PageStore`,
so an index can layer a buffer pool directly over a single large object.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from repro.storage.locks import IsolationLevel, LockManager, LockMode
from repro.storage.pages import PAGE_SIZE, PageStore
from repro.storage.wal import RecordKind, WriteAheadLog


class SbspaceError(RuntimeError):
    """Misuse of the smart-blob space (bad handle, closed object, ...)."""


#: Large-object handles are deliberately bulky strings: the paper points
#: out that storing one per child pointer in index nodes is a real cost
#: of the "one large object per node" design.
_HANDLE_PREFIX = "LO:"
_HANDLE_PAD = 56


@dataclass(frozen=True)
class LargeObjectHandle:
    """An opaque handle identifying a large object in an sbspace."""

    value: str

    @staticmethod
    def fresh(sequence: int) -> "LargeObjectHandle":
        body = f"{_HANDLE_PREFIX}{sequence:012d}"
        return LargeObjectHandle(body.ljust(_HANDLE_PAD, "f"))

    def __str__(self) -> str:
        return self.value

    @property
    def size_bytes(self) -> int:
        """Size of the handle when embedded in an index entry."""
        return len(self.value)


class OpenMode(enum.Enum):
    READ = "r"
    WRITE = "w"

    @property
    def lock_mode(self) -> LockMode:
        return LockMode.SHARED if self is OpenMode.READ else LockMode.EXCLUSIVE


class SmartBlob(PageStore):
    """A large object: a growable array of pages plus a byte-range API."""

    def __init__(self, space: "Sbspace", handle: LargeObjectHandle) -> None:
        super().__init__(space.page_size)
        self._space = space
        self.handle = handle
        self._pages: Dict[int, bytes] = {}
        self._free: list[int] = []
        self._next_id = 0
        #: Open descriptors by transaction id (None key = no transaction).
        self.open_count = 0

    # -- PageStore interface -------------------------------------------

    def read_page(self, page_id: int) -> bytes:
        faults = self._space.faults
        if faults is not None:
            faults.hit("sbspace.page_read")
        self._space.stats_page_reads += 1
        try:
            return self._pages[page_id]
        except KeyError:
            raise SbspaceError(
                f"page {page_id} not allocated in {self.handle}"
            ) from None

    def write_page(self, page_id: int, data: bytes) -> None:
        if page_id not in self._pages:
            raise SbspaceError(f"page {page_id} not allocated in {self.handle}")
        data = self._check_data(data)
        stored = data
        faults = self._space.faults
        if faults is not None:
            # A torn/corrupt write mangles what lands on the page, but
            # the WAL keeps the *intended* after-image: redo heals it.
            stored = faults.on_write("sbspace.page_write", data, self._pages[page_id])
        self._space.stats_page_writes += 1
        self._space._log_page_write(
            self.handle, page_id, before=self._pages[page_id], after=data
        )
        self._pages[page_id] = stored

    def allocate_page(self) -> int:
        page_id = self._free.pop() if self._free else self._next_id
        if page_id == self._next_id:
            self._next_id += 1
        self._pages[page_id] = b"\x00" * self.page_size
        self._space._log_page_alloc(self.handle, page_id)
        return page_id

    def free_page(self, page_id: int) -> None:
        if page_id not in self._pages:
            raise SbspaceError(f"page {page_id} not allocated in {self.handle}")
        self._space._log_page_free(self.handle, page_id, self._pages[page_id])
        del self._pages[page_id]
        self._free.append(page_id)

    @property
    def page_count(self) -> int:
        return len(self._pages)

    # -- Byte-range convenience API (generic BLOB usage) ---------------

    def write_bytes(self, offset: int, data: bytes) -> None:
        """Write *data* at byte *offset*, growing the object as needed."""
        if not data:
            return
        last_page = (offset + len(data) - 1) // self.page_size
        for page_id in range(last_page + 1):
            if page_id not in self._pages:
                self._pages[page_id] = b"\x00" * self.page_size
                self._next_id = max(self._next_id, page_id + 1)
                self._space._log_page_alloc(self.handle, page_id)
        pos = offset
        remaining = data
        while remaining:
            page_id = pos // self.page_size
            in_page = pos % self.page_size
            chunk = remaining[: self.page_size - in_page]
            page = bytearray(self._pages[page_id])
            page[in_page : in_page + len(chunk)] = chunk
            self.write_page(page_id, bytes(page))
            pos += len(chunk)
            remaining = remaining[len(chunk) :]

    def read_bytes(self, offset: int, length: int) -> bytes:
        """Read *length* bytes at *offset* (zero-filled past the end)."""
        result = bytearray()
        pos = offset
        while len(result) < length:
            page_id = pos // self.page_size
            in_page = pos % self.page_size
            page = self._pages.get(page_id)
            chunk_len = min(self.page_size - in_page, length - len(result))
            if page is None:
                result.extend(b"\x00" * chunk_len)
            else:
                self._space.stats_page_reads += 1
                result.extend(page[in_page : in_page + chunk_len])
            pos += chunk_len
        return bytes(result)


class Sbspace:
    """A smart-blob space: a named collection of large objects.

    Locking (when a :class:`LockManager` is attached) follows the paper's
    description: opening acquires an object-level lock; closing releases a
    *shared* lock only below the repeatable-read isolation level, while
    exclusive locks are always held until transaction end (strict 2PL).
    """

    def __init__(
        self,
        name: str = "sbspace1",
        page_size: int = PAGE_SIZE,
        lock_manager: Optional[LockManager] = None,
        wal: Optional[WriteAheadLog] = None,
        faults=None,
    ) -> None:
        self.name = name
        self.page_size = page_size
        self.locks = lock_manager
        self.wal = wal
        #: Optional :class:`repro.faults.FaultRegistry`.
        self.faults = faults
        self._objects: Dict[str, SmartBlob] = {}
        self._sequence = itertools.count(1)
        self._current_txn: Optional[int] = None
        # Statistics surfaced to the storage-option benchmarks.
        self.stats_opens = 0
        self.stats_closes = 0
        self.stats_page_reads = 0
        self.stats_page_writes = 0

    # ------------------------------------------------------------------
    # Transaction context (set by the session layer)
    # ------------------------------------------------------------------

    def set_transaction(self, txn_id: Optional[int]) -> None:
        """Associate subsequent operations with a transaction id."""
        self._current_txn = txn_id

    def _log_page_write(self, handle, page_id, before, after) -> None:
        if self.wal is not None and self._current_txn is not None:
            self.wal.log_page_write(
                self._current_txn, handle.value, page_id, before, after
            )

    def _log_page_alloc(self, handle, page_id) -> None:
        if self.wal is not None and self._current_txn is not None:
            self.wal.log_page_alloc(self._current_txn, handle.value, page_id)

    def _log_page_free(self, handle, page_id, before) -> None:
        if self.wal is not None and self._current_txn is not None:
            self.wal.log_page_free(self._current_txn, handle.value, page_id, before)

    # ------------------------------------------------------------------
    # Large-object lifecycle
    # ------------------------------------------------------------------

    def create(self) -> SmartBlob:
        handle = LargeObjectHandle.fresh(next(self._sequence))
        blob = SmartBlob(self, handle)
        self._objects[handle.value] = blob
        if self.wal is not None and self._current_txn is not None:
            self.wal.log_create_lo(self._current_txn, handle.value)
        return blob

    def drop(self, handle: LargeObjectHandle) -> None:
        if handle.value not in self._objects:
            raise SbspaceError(f"no large object {handle}")
        if self.wal is not None and self._current_txn is not None:
            self.wal.log_drop_lo(self._current_txn, handle.value)
        del self._objects[handle.value]

    def get(self, handle: LargeObjectHandle) -> SmartBlob:
        try:
            return self._objects[handle.value]
        except KeyError:
            raise SbspaceError(f"no large object {handle}") from None

    def __contains__(self, handle: LargeObjectHandle) -> bool:
        return handle.value in self._objects

    @property
    def object_count(self) -> int:
        return len(self._objects)

    def stats(self) -> Dict[str, int]:
        """Counters pulled by the observability metrics collectors."""
        return {
            "opens": self.stats_opens,
            "closes": self.stats_closes,
            "page_reads": self.stats_page_reads,
            "page_writes": self.stats_page_writes,
            "large_objects": len(self._objects),
        }

    # ------------------------------------------------------------------
    # Open/close with automatic locking (the paper's sbspace semantics)
    # ------------------------------------------------------------------

    def open(
        self,
        handle: LargeObjectHandle,
        mode: OpenMode = OpenMode.READ,
        txn_id: Optional[int] = None,
        isolation: IsolationLevel = IsolationLevel.COMMITTED_READ,
    ) -> SmartBlob:
        """Open a large object, acquiring its object-level lock."""
        if self.faults is not None:
            self.faults.hit("sbspace.open")
        blob = self.get(handle)
        if self.locks is not None and txn_id is not None:
            if not (mode is OpenMode.READ and isolation is IsolationLevel.DIRTY_READ):
                self.locks.acquire(txn_id, ("lo", handle.value), mode.lock_mode)
        blob.open_count += 1
        self.stats_opens += 1
        return blob

    def close(
        self,
        handle: LargeObjectHandle,
        mode: OpenMode = OpenMode.READ,
        txn_id: Optional[int] = None,
        isolation: IsolationLevel = IsolationLevel.COMMITTED_READ,
    ) -> None:
        """Close a large object.

        A shared lock is released here only below repeatable read; an
        exclusive lock is never released before transaction end.
        """
        blob = self.get(handle)
        if blob.open_count <= 0:
            raise SbspaceError(f"{handle} is not open")
        blob.open_count -= 1
        self.stats_closes += 1
        if (
            self.locks is not None
            and txn_id is not None
            and mode is OpenMode.READ
            and isolation is not IsolationLevel.REPEATABLE_READ
        ):
            held = self.locks.mode_held(txn_id, ("lo", handle.value))
            if held is LockMode.SHARED:
                self.locks.release(txn_id, ("lo", handle.value))

    def end_transaction(self, txn_id: int) -> None:
        """Release every lock the transaction holds (two-phase release)."""
        if self.locks is not None:
            self.locks.release_all(txn_id)

    # ------------------------------------------------------------------
    # Runtime rollback and crash recovery (driven by the WAL)
    # ------------------------------------------------------------------

    def rollback(self, txn_id: int) -> None:
        """Undo the transaction's effects from before-images, in reverse."""
        if self.wal is None:
            raise SbspaceError("rollback requires a write-ahead log")
        for record in reversed(self.wal.records_for(txn_id)):
            if record.kind is RecordKind.PAGE_WRITE:
                blob = self._objects.get(record.lo_handle)
                if blob is not None and record.page_id in blob._pages:
                    blob._pages[record.page_id] = record.before
            elif record.kind is RecordKind.PAGE_ALLOC:
                blob = self._objects.get(record.lo_handle)
                if blob is not None:
                    blob._pages.pop(record.page_id, None)
                    blob._free.append(record.page_id)
            elif record.kind is RecordKind.PAGE_FREE:
                blob = self._objects.get(record.lo_handle)
                if blob is not None:
                    blob._pages[record.page_id] = record.before
                    if record.page_id in blob._free:
                        blob._free.remove(record.page_id)
            elif record.kind is RecordKind.CREATE_LO:
                self._objects.pop(record.lo_handle, None)
            elif record.kind is RecordKind.DROP_LO:
                # Dropped objects cannot be resurrected with content here;
                # drops are therefore deferred to commit by callers that
                # need abort-safety.  Recreate an empty shell.
                handle = LargeObjectHandle(record.lo_handle)
                self._objects.setdefault(record.lo_handle, SmartBlob(self, handle))

    def _reset_for_recovery(self) -> None:
        self._objects.clear()

    def _finish_recovery(self) -> None:
        """Rebuild derived state the log does not record directly.

        Without this, a recovered space would hand out handle sequence
        numbers starting from 1 again: the next ``create()`` would mint
        a handle colliding with a recovered large object and silently
        replace it in ``_objects`` -- committed data lost to a *new*
        transaction after a perfectly good recovery.  (Found by the WAL
        replay idempotency test.)  Free lists are likewise rebuilt so a
        recovered blob allocates pages the same way a live one would.
        """
        max_seq = 0
        for value, blob in self._objects.items():
            if value.startswith(_HANDLE_PREFIX):
                digits = value[len(_HANDLE_PREFIX) :].rstrip("f")
                if digits.isdigit():
                    max_seq = max(max_seq, int(digits))
            blob._free = sorted(
                set(range(blob._next_id)) - set(blob._pages), reverse=True
            )
        self._sequence = itertools.count(max_seq + 1)

    def _redo(self, record) -> None:
        """Apply one committed log record during recovery."""
        if record.kind is RecordKind.CREATE_LO:
            handle = LargeObjectHandle(record.lo_handle)
            self._objects[record.lo_handle] = SmartBlob(self, handle)
        elif record.kind is RecordKind.DROP_LO:
            self._objects.pop(record.lo_handle, None)
        elif record.kind is RecordKind.PAGE_ALLOC:
            blob = self._objects[record.lo_handle]
            blob._pages[record.page_id] = b"\x00" * self.page_size
            blob._next_id = max(blob._next_id, record.page_id + 1)
        elif record.kind is RecordKind.PAGE_FREE:
            blob = self._objects[record.lo_handle]
            blob._pages.pop(record.page_id, None)
        elif record.kind is RecordKind.PAGE_WRITE:
            blob = self._objects[record.lo_handle]
            blob._pages[record.page_id] = record.after
