"""The "in-between" storage design of Section 5.3.

Between the two extremes the paper analyses -- one large object for the
whole index (least concurrency) and one per node (bulky handles, costly
opens) -- it suggests a middle ground: "large objects do not store
single nodes, but several nodes ... Such a design would require policies
for assigning nodes to large objects".

:class:`MultiBlobPageStore` implements the straightforward policy: pages
are striped into fixed-size groups, one large object per group, created
on demand.  Locking then happens at group granularity (the caller locks
``("lo", handle)`` exactly as for any large object), so two operations
conflict only when they touch nodes in the same group.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.storage.pages import PageStore
from repro.storage.sbspace import LargeObjectHandle, Sbspace, SmartBlob


class MultiBlobPageStore(PageStore):
    """A page store striping pages over several smart blobs.

    Page id ``p`` lives in group ``p // pages_per_lo`` at slot
    ``p % pages_per_lo``.  Groups materialize as large objects the first
    time a page in them is allocated.
    """

    def __init__(self, space: Sbspace, pages_per_lo: int = 8) -> None:
        super().__init__(space.page_size)
        if pages_per_lo < 1:
            raise ValueError("pages_per_lo must be at least 1")
        self.space = space
        self.pages_per_lo = pages_per_lo
        self._groups: List[SmartBlob] = []
        self._allocated: Dict[int, bool] = {}
        self._free: List[int] = []
        self._next_id = 0

    # ------------------------------------------------------------------

    def _locate(self, page_id: int) -> tuple[SmartBlob, int]:
        group = page_id // self.pages_per_lo
        if group >= len(self._groups):
            raise KeyError(f"page {page_id} is not allocated")
        return self._groups[group], page_id % self.pages_per_lo

    def handle_for_page(self, page_id: int) -> LargeObjectHandle:
        """The large object a page lives in -- the locking unit."""
        blob, _ = self._locate(page_id)
        return blob.handle

    def group_count(self) -> int:
        return len(self._groups)

    @property
    def handle_bytes_per_child_pointer(self) -> float:
        """Extra bytes a parent entry would carry to address a child in
        another large object (amortized: one handle per group)."""
        if not self._groups:
            return 0.0
        return self._groups[0].handle.size_bytes / self.pages_per_lo

    # -- PageStore interface ----------------------------------------------

    def read_page(self, page_id: int) -> bytes:
        if not self._allocated.get(page_id):
            raise KeyError(f"page {page_id} is not allocated")
        blob, slot = self._locate(page_id)
        return blob.read_bytes(slot * self.page_size, self.page_size)

    def write_page(self, page_id: int, data: bytes) -> None:
        if not self._allocated.get(page_id):
            raise KeyError(f"page {page_id} is not allocated")
        blob, slot = self._locate(page_id)
        blob.write_bytes(slot * self.page_size, self._check_data(data))

    def allocate_page(self) -> int:
        page_id = self._free.pop() if self._free else self._next_id
        if page_id == self._next_id:
            self._next_id += 1
        group = page_id // self.pages_per_lo
        while group >= len(self._groups):
            self._groups.append(self.space.create())
        self._allocated[page_id] = True
        # Touch the slot so the blob's pages exist (zero-filled).
        blob, slot = self._locate(page_id)
        blob.write_bytes(slot * self.page_size, b"\x00" * self.page_size)
        return page_id

    def free_page(self, page_id: int) -> None:
        if not self._allocated.get(page_id):
            raise KeyError(f"page {page_id} is not allocated")
        self._allocated[page_id] = False
        self._free.append(page_id)

    @property
    def page_count(self) -> int:
        return sum(1 for live in self._allocated.values() if live)

    def drop(self) -> None:
        """Release every large object backing the store."""
        for blob in self._groups:
            self.space.drop(blob.handle)
        self._groups.clear()
        self._allocated.clear()
        self._free.clear()
        self._next_id = 0
