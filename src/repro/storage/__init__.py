"""Storage substrate: pages, buffering, smart blobs, locks, logging.

The paper's Section 5.3 analyses the two storage options an access-method
DataBlade has in the Informix server: *sbspace smart blobs* (large objects
with automatic two-phase locking at large-object granularity) and plain
*operating-system files* (no services at all).  This subpackage rebuilds
both, plus the page/buffer machinery and a write-ahead log, so the paper's
concurrency and recovery discussion can be exercised as code.
"""

from repro.storage.buffer import BufferPool, IOStats
from repro.storage.locks import (
    IsolationLevel,
    LockConflictError,
    LockManager,
    LockMode,
)
from repro.storage.multiblob import MultiBlobPageStore
from repro.storage.osfile import OSFilePageStore
from repro.storage.pages import PAGE_SIZE, InMemoryPageStore, PageStore
from repro.storage.sbspace import LargeObjectHandle, Sbspace, SmartBlob
from repro.storage.wal import LogRecord, RecordKind, WriteAheadLog

__all__ = [
    "BufferPool",
    "IOStats",
    "IsolationLevel",
    "LockConflictError",
    "LockManager",
    "LockMode",
    "MultiBlobPageStore",
    "OSFilePageStore",
    "PAGE_SIZE",
    "InMemoryPageStore",
    "PageStore",
    "LargeObjectHandle",
    "Sbspace",
    "SmartBlob",
    "LogRecord",
    "RecordKind",
    "WriteAheadLog",
]
