"""A buffer pool with LRU replacement and I/O accounting.

Every index structure in the reproduction performs its page traffic
through a :class:`BufferPool`, so the benchmarks can report I/O counts
(the currency of the GR-tree evaluation) rather than wall-clock noise.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.storage.pages import PageStore


@dataclass
class IOStats:
    """Counters for logical and physical page traffic."""

    logical_reads: int = 0
    physical_reads: int = 0
    logical_writes: int = 0
    physical_writes: int = 0

    @property
    def hit_ratio(self) -> float:
        if self.logical_reads == 0:
            return 1.0
        return 1.0 - self.physical_reads / self.logical_reads

    def reset(self) -> None:
        self.logical_reads = 0
        self.physical_reads = 0
        self.logical_writes = 0
        self.physical_writes = 0

    def snapshot(self) -> "IOStats":
        return IOStats(
            self.logical_reads,
            self.physical_reads,
            self.logical_writes,
            self.physical_writes,
        )

    def to_dict(self) -> dict:
        """Flat export used by the observability metrics collectors."""
        return {
            "logical_reads": self.logical_reads,
            "physical_reads": self.physical_reads,
            "logical_writes": self.logical_writes,
            "physical_writes": self.physical_writes,
            "hit_ratio": self.hit_ratio,
        }

    def __sub__(self, other: "IOStats") -> "IOStats":
        if not isinstance(other, IOStats):
            return NotImplemented
        diff = IOStats(
            self.logical_reads - other.logical_reads,
            self.physical_reads - other.physical_reads,
            self.logical_writes - other.logical_writes,
            self.physical_writes - other.physical_writes,
        )
        if min(
            diff.logical_reads,
            diff.physical_reads,
            diff.logical_writes,
            diff.physical_writes,
        ) < 0:
            raise ValueError(
                "IOStats subtraction went negative: the snapshot is newer "
                "than these counters (or belongs to a different pool)"
            )
        return diff


class BufferPool:
    """Write-back LRU cache of pages over a :class:`PageStore`."""

    def __init__(self, store: PageStore, capacity: int = 64, faults=None) -> None:
        if capacity < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.store = store
        self.capacity = capacity
        #: Optional :class:`repro.faults.FaultRegistry`.
        self.faults = faults
        self.stats = IOStats()
        # page_id -> (data, dirty); insertion order == recency order.
        self._frames: "OrderedDict[int, tuple[bytes, bool]]" = OrderedDict()
        # Caches layered above the pool (deserialized-node caches) register
        # here so a wholesale drop of the frames also drops their state.
        self._invalidation_listeners: list = []

    def add_invalidation_listener(self, listener) -> None:
        """Call *listener* whenever :meth:`invalidate` drops all frames."""
        self._invalidation_listeners.append(listener)

    # ------------------------------------------------------------------

    def read(self, page_id: int) -> bytes:
        """Fetch a page, through the cache."""
        self.stats.logical_reads += 1
        if page_id in self._frames:
            data, dirty = self._frames.pop(page_id)
            self._frames[page_id] = (data, dirty)
            return data
        data = self.store.read_page(page_id)
        self.stats.physical_reads += 1
        self._admit(page_id, data, dirty=False)
        return data

    def write(self, page_id: int, data: bytes) -> None:
        """Stage a page write; flushed on eviction or :meth:`flush`."""
        data = self.store._check_data(data)
        self.stats.logical_writes += 1
        if page_id in self._frames:
            self._frames.pop(page_id)
        self._admit(page_id, data, dirty=True)

    def allocate(self) -> int:
        page_id = self.store.allocate_page()
        # The store recycles freed ids (LIFO free lists); a frame for a
        # previous incarnation of this page must not be resurrected.
        self._frames.pop(page_id, None)
        return page_id

    def free(self, page_id: int) -> None:
        """Discard any cached copy and release the page."""
        self._frames.pop(page_id, None)
        self.store.free_page(page_id)

    def flush(self) -> None:
        """Write back every dirty frame (keeps frames resident)."""
        if self.faults is not None:
            self.faults.hit("buffer.flush")
        for page_id, (data, dirty) in list(self._frames.items()):
            if dirty:
                self.store.write_page(page_id, data)
                self.stats.physical_writes += 1
                self._frames[page_id] = (data, False)

    def invalidate(self) -> None:
        """Drop all frames without writing back (crash simulation)."""
        self._frames.clear()
        for listener in self._invalidation_listeners:
            listener()

    # ------------------------------------------------------------------

    def _admit(self, page_id: int, data: bytes, dirty: bool) -> None:
        self._frames[page_id] = (data, dirty)
        while len(self._frames) > self.capacity:
            victim_id, (victim, victim_dirty) = self._frames.popitem(last=False)
            if victim_dirty:
                self.store.write_page(victim_id, victim)
                self.stats.physical_writes += 1

    @property
    def resident_pages(self) -> int:
        return len(self._frames)
