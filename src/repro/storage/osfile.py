"""Index storage in a regular operating-system file (Section 5.3).

The paper's second storage option: index pages live in an OS file outside
the server's data space.  The developer gets full freedom -- and zero
services: "all concurrency control and recovery protocols must be
implemented by the access-method developer."  Accordingly this store
offers nothing beyond raw page I/O; the storage-option benchmark contrasts
that with the sbspace's automatic locking and logging.
"""

from __future__ import annotations

import os
import struct
from typing import Optional

from repro.storage.pages import PAGE_SIZE, PageStore

#: Header layout: magic, page size, next page id, free-list head.
_HEADER = struct.Struct("<4sIII")
_MAGIC = b"GRTF"
_NO_PAGE = 0xFFFFFFFF


class OSFilePageStore(PageStore):
    """Fixed-size pages in a real file, with an intrusive free list.

    Freed pages chain through their own first four bytes, so the free
    list costs no extra storage -- the classic slotted-file trick.
    """

    def __init__(self, path: str, page_size: int = PAGE_SIZE, faults=None) -> None:
        super().__init__(page_size)
        self.path = path
        #: Optional :class:`repro.faults.FaultRegistry`.
        self.faults = faults
        create = not os.path.exists(path) or os.path.getsize(path) == 0
        self._file = open(path, "r+b" if not create else "w+b")
        if create:
            self._next_id = 0
            self._free_head = _NO_PAGE
            self._live = 0
            self._write_header()
        else:
            self._read_header()

    # ------------------------------------------------------------------

    def _write_header(self) -> None:
        self._file.seek(0)
        self._file.write(
            _HEADER.pack(_MAGIC, self.page_size, self._next_id, self._free_head)
        )
        self._file.flush()

    def _read_header(self) -> None:
        self._file.seek(0)
        raw = self._file.read(_HEADER.size)
        magic, page_size, next_id, free_head = _HEADER.unpack(raw)
        if magic != _MAGIC:
            raise ValueError(f"{self.path} is not a GR-tree index file")
        if page_size != self.page_size:
            raise ValueError(
                f"page-size mismatch: file has {page_size}, requested {self.page_size}"
            )
        self._next_id = next_id
        self._free_head = free_head
        # Count live pages by walking the free list.
        free = 0
        cursor = free_head
        while cursor != _NO_PAGE:
            free += 1
            cursor = self._read_free_link(cursor)
        self._live = self._next_id - free

    def _offset(self, page_id: int) -> int:
        return _HEADER.size + page_id * self.page_size

    def _read_free_link(self, page_id: int) -> int:
        self._file.seek(self._offset(page_id))
        return struct.unpack("<I", self._file.read(4))[0]

    # ------------------------------------------------------------------

    def read_page(self, page_id: int) -> bytes:
        if page_id >= self._next_id:
            raise KeyError(f"page {page_id} is not allocated")
        if self.faults is not None:
            self.faults.hit("osfile.read")
        self._file.seek(self._offset(page_id))
        return self._file.read(self.page_size)

    def write_page(self, page_id: int, data: bytes) -> None:
        if page_id >= self._next_id:
            raise KeyError(f"page {page_id} is not allocated")
        data = self._check_data(data)
        if self.faults is not None:
            # A torn write here really lands on disk: there is no WAL
            # behind an OS file (paper Section 5.3 -- "all ... recovery
            # protocols must be implemented by the access-method
            # developer"), so only a checksum wrapper can catch it.
            self._file.seek(self._offset(page_id))
            old = self._file.read(self.page_size)
            data = self.faults.on_write("osfile.write", data, old)
        self._file.seek(self._offset(page_id))
        self._file.write(data)

    def allocate_page(self) -> int:
        if self._free_head != _NO_PAGE:
            page_id = self._free_head
            self._free_head = self._read_free_link(page_id)
        else:
            page_id = self._next_id
            self._next_id += 1
        self._file.seek(self._offset(page_id))
        self._file.write(b"\x00" * self.page_size)
        self._live += 1
        self._write_header()
        return page_id

    def free_page(self, page_id: int) -> None:
        if page_id >= self._next_id:
            raise KeyError(f"page {page_id} is not allocated")
        self._file.seek(self._offset(page_id))
        self._file.write(struct.pack("<I", self._free_head))
        self._free_head = page_id
        self._live -= 1
        self._write_header()

    @property
    def page_count(self) -> int:
        return self._live

    def sync(self) -> None:
        """Force pages to stable storage (the only durability we offer)."""
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        self._write_header()
        self._file.close()

    def __enter__(self) -> "OSFilePageStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
