"""Lock manager: shared/exclusive two-phase locking.

The smart-blob space locks at *large-object* granularity (Section 5.3 of
the paper): a lock is acquired when a large object is opened and -- this is
the paper's key observation -- released either when the object is closed
or only at transaction end, depending on the lock mode and the
transaction's isolation level.  A DataBlade developer has no control over
this, which is why R-link-style high-concurrency protocols cannot be built
on sbspaces.

The reproduction is single-threaded; "concurrency" means interleaved
operations issued by distinct transaction tokens.  A conflicting request
raises :class:`LockConflictError` immediately (no blocking), which is what
the concurrency benchmarks count.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Hashable, Set


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class IsolationLevel(enum.Enum):
    """The isolation levels the paper's discussion distinguishes."""

    DIRTY_READ = "dirty read"
    COMMITTED_READ = "committed read"
    REPEATABLE_READ = "repeatable read"


class LockConflictError(RuntimeError):
    """A lock request conflicts with locks held by other transactions."""

    def __init__(self, resource: Hashable, mode: LockMode, holders: Set[int]) -> None:
        self.resource = resource
        self.mode = mode
        self.holders = set(holders)
        super().__init__(
            f"cannot lock {resource!r} in mode {mode.value}: "
            f"held by transactions {sorted(holders)}"
        )


@dataclass
class _LockState:
    shared: Set[int] = field(default_factory=set)
    exclusive: int | None = None


class LockManager:
    """Grants S/X locks to transaction ids over hashable resources."""

    def __init__(self) -> None:
        self._locks: Dict[Hashable, _LockState] = defaultdict(_LockState)
        #: Total number of conflicts observed (for the benchmarks).
        self.conflicts = 0
        #: Grants and actual releases; plain ints so the hot path pays
        #: one increment, pulled by the observability collectors.
        self.acquires = 0
        self.releases = 0

    # ------------------------------------------------------------------

    def acquire(self, txn_id: int, resource: Hashable, mode: LockMode) -> None:
        """Grant the lock or raise :class:`LockConflictError`.

        Re-acquisition and S->X upgrade by the sole holder succeed.
        """
        state = self._locks[resource]
        if mode is LockMode.SHARED:
            if state.exclusive is not None and state.exclusive != txn_id:
                self.conflicts += 1
                raise LockConflictError(resource, mode, {state.exclusive})
            state.shared.add(txn_id)
            self.acquires += 1
            return
        # Exclusive request.
        others = (state.shared - {txn_id}) | (
            {state.exclusive} if state.exclusive not in (None, txn_id) else set()
        )
        if others:
            self.conflicts += 1
            raise LockConflictError(resource, mode, others)
        state.shared.discard(txn_id)
        state.exclusive = txn_id
        self.acquires += 1

    def release(self, txn_id: int, resource: Hashable) -> None:
        """Release this transaction's lock on *resource* (idempotent)."""
        state = self._locks.get(resource)
        if state is None:
            return
        if txn_id in state.shared or state.exclusive == txn_id:
            self.releases += 1
        state.shared.discard(txn_id)
        if state.exclusive == txn_id:
            state.exclusive = None
        if not state.shared and state.exclusive is None:
            del self._locks[resource]

    def release_all(self, txn_id: int) -> int:
        """Two-phase release at transaction end; returns count released."""
        released = 0
        for resource in list(self._locks):
            state = self._locks[resource]
            if txn_id in state.shared or state.exclusive == txn_id:
                self.release(txn_id, resource)
                released += 1
        return released

    # ------------------------------------------------------------------

    def holders(self, resource: Hashable) -> Set[int]:
        state = self._locks.get(resource)
        if state is None:
            return set()
        result = set(state.shared)
        if state.exclusive is not None:
            result.add(state.exclusive)
        return result

    def mode_held(self, txn_id: int, resource: Hashable) -> LockMode | None:
        state = self._locks.get(resource)
        if state is None:
            return None
        if state.exclusive == txn_id:
            return LockMode.EXCLUSIVE
        if txn_id in state.shared:
            return LockMode.SHARED
        return None

    @property
    def locked_resources(self) -> int:
        return len(self._locks)
