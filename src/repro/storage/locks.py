"""Lock manager: shared/exclusive two-phase locking.

The smart-blob space locks at *large-object* granularity (Section 5.3 of
the paper): a lock is acquired when a large object is opened and -- this is
the paper's key observation -- released either when the object is closed
or only at transaction end, depending on the lock mode and the
transaction's isolation level.  A DataBlade developer has no control over
this, which is why R-link-style high-concurrency protocols cannot be built
on sbspaces.

Since the serving layer (``repro.net``) runs real concurrent sessions,
the manager is thread-safe: every grant table mutation happens under one
mutex, and a condition variable lets a request *block* for a bounded
time until conflicting locks are released.  The two behaviours the
callers rely on:

* ``acquire(txn, resource, mode)`` -- the historical no-wait form: a
  conflicting request raises :class:`LockConflictError` immediately,
  which is what the single-threaded concurrency benchmarks count;
* ``acquire(txn, resource, mode, wait_timeout=seconds)`` -- block until
  the lock is grantable or the timeout elapses, then raise
  :class:`LockTimeoutError`.  There is no waits-for graph: deadlocks
  resolve by timeout, after which the serving layer aborts the waiting
  transaction (deadlock-by-timeout, the classical fallback).
"""

from __future__ import annotations

import enum
import threading
import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Set


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class IsolationLevel(enum.Enum):
    """The isolation levels the paper's discussion distinguishes."""

    DIRTY_READ = "dirty read"
    COMMITTED_READ = "committed read"
    REPEATABLE_READ = "repeatable read"


class LockConflictError(RuntimeError):
    """A lock request conflicts with locks held by other transactions."""

    def __init__(self, resource: Hashable, mode: LockMode, holders: Set[int]) -> None:
        self.resource = resource
        self.mode = mode
        self.holders = set(holders)
        super().__init__(
            f"cannot lock {resource!r} in mode {mode.value}: "
            f"held by transactions {sorted(holders)}"
        )


class LockTimeoutError(LockConflictError):
    """A blocking lock request gave up after ``wait_timeout`` seconds.

    Subclasses :class:`LockConflictError` so callers that treat a
    conflict as retryable need no second except clause.
    """

    def __init__(
        self,
        resource: Hashable,
        mode: LockMode,
        holders: Set[int],
        waited: float,
    ) -> None:
        super().__init__(resource, mode, holders)
        self.waited = waited
        self.args = (
            f"lock wait timeout ({waited:.3f}s) on {resource!r} in mode "
            f"{mode.value}: held by transactions {sorted(holders)}",
        )


@dataclass
class _LockState:
    shared: Set[int] = field(default_factory=set)
    exclusive: int | None = None


class LockManager:
    """Grants S/X locks to transaction ids over hashable resources."""

    def __init__(self, faults=None) -> None:
        #: Optional :class:`repro.faults.FaultRegistry`.
        self.faults = faults
        self._locks: Dict[Hashable, _LockState] = defaultdict(_LockState)
        #: One mutex guards the grant table; the condition signals waiters
        #: whenever locks are released.
        self._mutex = threading.RLock()
        self._released = threading.Condition(self._mutex)
        #: Total number of conflicts observed (for the benchmarks).  A
        #: blocking acquire counts at most one conflict per call, however
        #: many times it re-checks while waiting.
        self.conflicts = 0
        #: Grants and actual releases; plain ints so the hot path pays
        #: one increment, pulled by the observability collectors.
        self.acquires = 0
        self.releases = 0
        #: Requests that timed out while blocking (deadlock-by-timeout).
        self.timeouts = 0
        #: Total seconds spent blocked inside :meth:`acquire`, successful
        #: or not -- the workload model's per-statement lock-wait time.
        self.wait_seconds = 0.0

    # ------------------------------------------------------------------

    def _try_grant(
        self, txn_id: int, resource: Hashable, mode: LockMode
    ) -> Optional[Set[int]]:
        """Grant and return ``None``, or return the blocking holders.

        Caller holds :attr:`_mutex`.  Re-acquisition and S->X upgrade by
        the sole holder succeed.
        """
        state = self._locks[resource]
        if mode is LockMode.SHARED:
            if state.exclusive is not None and state.exclusive != txn_id:
                return {state.exclusive}
            state.shared.add(txn_id)
            self.acquires += 1
            return None
        # Exclusive request.
        others = (state.shared - {txn_id}) | (
            {state.exclusive} if state.exclusive not in (None, txn_id) else set()
        )
        if others:
            return others
        state.shared.discard(txn_id)
        state.exclusive = txn_id
        self.acquires += 1
        return None

    def acquire(
        self,
        txn_id: int,
        resource: Hashable,
        mode: LockMode,
        wait_timeout: Optional[float] = None,
    ) -> None:
        """Grant the lock, or raise.

        With ``wait_timeout=None`` (the default) a conflicting request
        raises :class:`LockConflictError` immediately.  With a positive
        timeout the call blocks until the lock becomes grantable, raising
        :class:`LockTimeoutError` once the deadline passes.
        """
        if self.faults is not None:
            self.faults.hit("lock.acquire")
        with self._released:
            blockers = self._try_grant(txn_id, resource, mode)
            if blockers is None:
                return
            self.conflicts += 1
            if not wait_timeout or wait_timeout <= 0:
                raise LockConflictError(resource, mode, blockers)
            started = time.monotonic()
            deadline = started + wait_timeout
            try:
                while True:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.timeouts += 1
                        raise LockTimeoutError(
                            resource, mode, blockers, wait_timeout
                        )
                    self._released.wait(remaining)
                    blockers = self._try_grant(txn_id, resource, mode)
                    if blockers is None:
                        return
            finally:
                self.wait_seconds += time.monotonic() - started

    def release(self, txn_id: int, resource: Hashable) -> None:
        """Release this transaction's lock on *resource* (idempotent)."""
        with self._released:
            state = self._locks.get(resource)
            if state is None:
                return
            if txn_id in state.shared or state.exclusive == txn_id:
                self.releases += 1
            state.shared.discard(txn_id)
            if state.exclusive == txn_id:
                state.exclusive = None
            if not state.shared and state.exclusive is None:
                del self._locks[resource]
            self._released.notify_all()

    def release_all(self, txn_id: int) -> int:
        """Two-phase release at transaction end; returns count released.

        Also the dropped-connection path: the serving layer rolls back a
        transaction whose client died, and every lock it held -- however
        it was acquired -- is released here, waking blocked waiters.
        """
        released = 0
        with self._released:
            for resource in list(self._locks):
                state = self._locks[resource]
                if txn_id in state.shared or state.exclusive == txn_id:
                    self.release(txn_id, resource)
                    released += 1
        return released

    # ------------------------------------------------------------------

    def holders(self, resource: Hashable) -> Set[int]:
        with self._mutex:
            state = self._locks.get(resource)
            if state is None:
                return set()
            result = set(state.shared)
            if state.exclusive is not None:
                result.add(state.exclusive)
            return result

    def mode_held(self, txn_id: int, resource: Hashable) -> LockMode | None:
        with self._mutex:
            state = self._locks.get(resource)
            if state is None:
                return None
            if state.exclusive == txn_id:
                return LockMode.EXCLUSIVE
            if txn_id in state.shared:
                return LockMode.SHARED
            return None

    @property
    def locked_resources(self) -> int:
        with self._mutex:
            return len(self._locks)
