"""Guttman's original R-tree [GUT84] with the quadratic split.

Kept as an ablation baseline: the paper's Figure 3 discussion (dead space
and overlap as the "goodness" criteria) is exactly what distinguishes the
R* split from Guttman's.  The class reuses the R*-tree's insertion and
deletion skeleton but chooses subtrees purely by area enlargement and
splits with the classic quadratic seed/distribute algorithm, with forced
reinsertion disabled.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.rtree.node import Entry, Node, NodeStore
from repro.rtree.geometry import Rect
from repro.rtree.rstar import RStarTree


class GuttmanRTree(RStarTree):
    """The classic R-tree: quadratic split, no forced reinsertion."""

    def __init__(self, store: NodeStore, min_fill: float = 0.4) -> None:
        super().__init__(store, min_fill=min_fill)
        self.reinsert_enabled = False

    def _choose_subtree(self, node: Node, rect: Rect) -> int:
        # Guttman: least area enlargement at every level.
        return self._least_area_enlargement(node, rect)

    def _choose_split(
        self, entries: List[Entry]
    ) -> Tuple[List[Entry], List[Entry]]:
        """Quadratic split: pick the pair of seeds wasting the most area,
        then assign each remaining entry to the group whose MBR grows
        least, honouring the minimum fill."""
        # PickSeeds.
        worst_pair, worst_waste = (0, 1), None
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (
                    entries[i].rect.union(entries[j].rect).area()
                    - entries[i].rect.area()
                    - entries[j].rect.area()
                )
                if worst_waste is None or waste > worst_waste:
                    worst_pair, worst_waste = (i, j), waste
        seed_a, seed_b = worst_pair
        group_a, group_b = [entries[seed_a]], [entries[seed_b]]
        mbr_a, mbr_b = entries[seed_a].rect, entries[seed_b].rect
        remaining = [
            e for k, e in enumerate(entries) if k not in (seed_a, seed_b)
        ]
        # Distribute with PickNext (max enlargement difference first).
        while remaining:
            # Honour the minimum fill: if one group must take the rest, do so.
            if len(group_a) + len(remaining) == self.min_entries:
                group_a.extend(remaining)
                break
            if len(group_b) + len(remaining) == self.min_entries:
                group_b.extend(remaining)
                break
            best_index, best_diff = 0, -1.0
            for k, entry in enumerate(remaining):
                d_a = mbr_a.enlargement(entry.rect)
                d_b = mbr_b.enlargement(entry.rect)
                diff = abs(d_a - d_b)
                if diff > best_diff:
                    best_index, best_diff = k, diff
            entry = remaining.pop(best_index)
            d_a = mbr_a.enlargement(entry.rect)
            d_b = mbr_b.enlargement(entry.rect)
            # Ties: smaller area, then fewer entries.
            if (d_a, mbr_a.area(), len(group_a)) <= (d_b, mbr_b.area(), len(group_b)):
                group_a.append(entry)
                mbr_a = mbr_a.union(entry.rect)
            else:
                group_b.append(entry)
                mbr_b = mbr_b.union(entry.rect)
        return group_a, group_b
