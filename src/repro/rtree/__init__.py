"""The R-tree family: geometry, node layout, R*-tree, and Guttman R-tree.

The GR-tree (Section 3 of the paper) is "based on the R*-tree [BEC90],
an improved version of the R-tree originally proposed by Guttman [GUT84]".
This subpackage provides those ancestors as full implementations over the
paged storage substrate: the R*-tree serves as the structural base and as
the evaluation baseline (with ``UC``/``NOW`` mapped to ground values), and
the Guttman R-tree appears in ablation benchmarks.
"""

from repro.rtree.geometry import Rect
from repro.rtree.guttman import GuttmanRTree
from repro.rtree.node import Entry, Node, NodeStore
from repro.rtree.rstar import RStarTree

__all__ = ["Rect", "GuttmanRTree", "Entry", "Node", "NodeStore", "RStarTree"]
