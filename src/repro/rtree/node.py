"""R-tree node layout and page (de)serialization.

A node occupies exactly one disk page (Section 3 of the paper).  Leaf
entries carry a minimum bounding rectangle plus a pointer to the data
tuple -- a ``(rowid, fragid)`` pair, matching the paper's Appendix A --
while internal entries carry the child node's page id.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional

from repro.rtree.geometry import Rect, union_all
from repro.storage.buffer import BufferPool

#: Node header: leaf flag, entry count, level (leaf = 0).
_NODE_HEADER = struct.Struct("<BHB")

#: Per-entry pointer: rowid + fragid for leaves, (page_id, 0) for internals.
_POINTER = struct.Struct("<qi")


@dataclass
class Entry:
    """One slot of a node: an MBR plus a child pointer or a tuple id."""

    rect: Rect
    child: Optional[int] = None          # page id of child (internal nodes)
    rowid: Optional[int] = None          # data tuple id (leaf nodes)
    fragid: int = 0

    @property
    def is_leaf_entry(self) -> bool:
        return self.child is None


@dataclass
class Node:
    """An R-tree node; ``page_id`` doubles as the node's identity."""

    page_id: int
    leaf: bool
    level: int = 0
    entries: List[Entry] = field(default_factory=list)

    def mbr(self) -> Rect:
        return union_all(e.rect for e in self.entries)

    def __len__(self) -> int:
        return len(self.entries)


class NodeStore:
    """Persists nodes through a buffer pool, one node per page.

    The store also computes the fan-out that fits the page size, so tree
    shape responds to the page size exactly as in a disk-based system.
    """

    def __init__(self, buffer: BufferPool, ndim: int = 2) -> None:
        self.buffer = buffer
        self.ndim = ndim
        self._coord = struct.Struct(f"<{2 * ndim}d")
        entry_size = self._coord.size + _POINTER.size
        self.capacity = (buffer.store.page_size - _NODE_HEADER.size) // entry_size
        if self.capacity < 4:
            raise ValueError(
                f"page size {buffer.store.page_size} too small: "
                f"fits only {self.capacity} entries"
            )

    # ------------------------------------------------------------------

    def allocate(self, leaf: bool, level: int = 0) -> Node:
        return Node(self.buffer.allocate(), leaf, level)

    def read(self, page_id: int) -> Node:
        data = self.buffer.read(page_id)
        leaf, count, level = _NODE_HEADER.unpack_from(data, 0)
        offset = _NODE_HEADER.size
        entries: List[Entry] = []
        for _ in range(count):
            coords = self._coord.unpack_from(data, offset)
            offset += self._coord.size
            a, b = _POINTER.unpack_from(data, offset)
            offset += _POINTER.size
            rect = Rect(tuple(coords[: self.ndim]), tuple(coords[self.ndim :]))
            if leaf:
                entries.append(Entry(rect, rowid=a, fragid=b))
            else:
                entries.append(Entry(rect, child=a))
        return Node(page_id, bool(leaf), level, entries)

    def write(self, node: Node) -> None:
        if len(node.entries) > self.capacity:
            raise ValueError(
                f"node overflow: {len(node.entries)} entries > capacity "
                f"{self.capacity}"
            )
        parts = [_NODE_HEADER.pack(node.leaf, len(node.entries), node.level)]
        for entry in node.entries:
            parts.append(self._coord.pack(*entry.rect.lo, *entry.rect.hi))
            if node.leaf:
                parts.append(_POINTER.pack(entry.rowid, entry.fragid))
            else:
                parts.append(_POINTER.pack(entry.child, 0))
        self.buffer.write(node.page_id, b"".join(parts))

    def free(self, page_id: int) -> None:
        self.buffer.free(page_id)
