"""The R*-tree [BEC90]: the structural base of the GR-tree.

Implements the full R* algorithm suite over paged nodes: ChooseSubtree
(minimum overlap enlargement at the leaf level, minimum area enlargement
above), OverflowTreatment with forced reinsertion (once per level per
insertion), the topological split (choose axis by margin, distribution by
overlap), deletion with tree condensation, and window search with node-
access accounting.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.rtree.geometry import Rect, union_all
from repro.rtree.node import Entry, Node, NodeStore


class RStarTree:
    """A disk-based R*-tree over a :class:`~repro.rtree.node.NodeStore`."""

    def __init__(
        self,
        store: NodeStore,
        min_fill: float = 0.4,
        reinsert_fraction: float = 0.3,
        root_id: Optional[int] = None,
        height: int = 1,
        size: int = 0,
    ) -> None:
        self.store = store
        self.max_entries = store.capacity
        self.min_entries = max(2, math.ceil(store.capacity * min_fill))
        self.reinsert_count = max(1, int(store.capacity * reinsert_fraction))
        #: Subclasses (the Guttman R-tree) can disable forced reinsertion.
        self.reinsert_enabled = True
        if root_id is None:
            root = store.allocate(leaf=True, level=0)
            store.write(root)
            root_id = root.page_id
        self.root_id = root_id
        self.height = height
        self.size = size
        #: Node accesses performed by the most recent search.
        self.last_node_accesses = 0
        #: Set when the most recent deletion condensed the tree (needed by
        #: the GR-tree cursor-restart compromise of Section 5.5).
        self.condensed = False
        self._reinserted_levels: set[int] = set()

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, rect: Rect, rowid: int, fragid: int = 0) -> None:
        """Insert a data rectangle (ID1 of the R* paper)."""
        self._reinserted_levels = set()
        self._insert_entry(Entry(rect, rowid=rowid, fragid=fragid), level=0)
        self.size += 1

    def _insert_entry(self, entry: Entry, level: int) -> None:
        path = self._choose_path(entry.rect, level)
        node = path[-1]
        node.entries.append(entry)
        self._propagate_up(path)

    def _choose_path(self, rect: Rect, target_level: int) -> List[Node]:
        """Read the root-to-target-level path chosen for *rect* (CS1-CS3)."""
        path = [self.store.read(self.root_id)]
        while path[-1].level > target_level:
            node = path[-1]
            index = self._choose_subtree(node, rect)
            path.append(self.store.read(node.entries[index].child))
        return path

    def _choose_subtree(self, node: Node, rect: Rect) -> int:
        """R* ChooseSubtree: overlap-driven just above the leaves."""
        if node.level == 1:
            return self._least_overlap_enlargement(node, rect)
        return self._least_area_enlargement(node, rect)

    def _least_area_enlargement(self, node: Node, rect: Rect) -> int:
        best, best_key = 0, None
        for i, entry in enumerate(node.entries):
            key = (entry.rect.enlargement(rect), entry.rect.area())
            if best_key is None or key < best_key:
                best, best_key = i, key
        return best

    def _least_overlap_enlargement(self, node: Node, rect: Rect) -> int:
        best, best_key = 0, None
        rects = [e.rect for e in node.entries]
        for i, entry in enumerate(node.entries):
            enlarged = entry.rect.union(rect)
            overlap_delta = sum(
                enlarged.overlap_area(other) - entry.rect.overlap_area(other)
                for j, other in enumerate(rects)
                if j != i
            )
            key = (overlap_delta, entry.rect.enlargement(rect), entry.rect.area())
            if best_key is None or key < best_key:
                best, best_key = i, key
        return best

    # ------------------------------------------------------------------
    # Overflow treatment: forced reinsert, then split
    # ------------------------------------------------------------------

    def _propagate_up(self, path: List[Node]) -> None:
        """Write back a modified path, treating overflows bottom-up."""
        for depth in range(len(path) - 1, -1, -1):
            node = path[depth]
            if len(node.entries) > self.max_entries:
                if (
                    self.reinsert_enabled
                    and depth > 0
                    and node.level not in self._reinserted_levels
                ):
                    self._reinserted_levels.add(node.level)
                    self._force_reinsert(path, depth)
                    return
                self._split(path, depth)
                if depth > 0:
                    # The parent gained an entry; keep propagating.
                    continue
                return
            self.store.write(node)
            if depth > 0:
                parent = path[depth - 1]
                self._refresh_child_rect(parent, node)
        # Path fully written.

    def _refresh_child_rect(self, parent: Node, child: Node) -> None:
        for entry in parent.entries:
            if entry.child == child.page_id:
                entry.rect = child.mbr()
                return
        raise RuntimeError(
            f"child {child.page_id} not found in parent {parent.page_id}"
        )

    def _force_reinsert(self, path: List[Node], depth: int) -> None:
        """R* forced reinsertion: evict the p entries farthest from the
        node's center and insert them again at the same level."""
        node = path[depth]
        center_rect = node.mbr()
        node.entries.sort(
            key=lambda e: e.rect.distance_to_center(center_rect), reverse=True
        )
        evicted = node.entries[: self.reinsert_count]
        node.entries = node.entries[self.reinsert_count :]
        self.store.write(node)
        # Shrink ancestor rectangles before reinserting.
        for d in range(depth - 1, -1, -1):
            self._refresh_child_rect(path[d], path[d + 1])
            self.store.write(path[d])
        # Close reinsert: farthest entries first were sorted; reinsert in
        # increasing distance order (reverse of eviction order).
        for entry in reversed(evicted):
            self._insert_entry(entry, node.level)

    def _split(self, path: List[Node], depth: int) -> None:
        """R* topological split of ``path[depth]``."""
        node = path[depth]
        group_a, group_b = self._choose_split(node.entries)
        node.entries = group_a
        sibling = self.store.allocate(leaf=node.leaf, level=node.level)
        sibling.entries = group_b
        self.store.write(node)
        self.store.write(sibling)
        if depth == 0:
            new_root = self.store.allocate(leaf=False, level=node.level + 1)
            new_root.entries = [
                Entry(node.mbr(), child=node.page_id),
                Entry(sibling.mbr(), child=sibling.page_id),
            ]
            self.store.write(new_root)
            self.root_id = new_root.page_id
            self.height += 1
            return
        parent = path[depth - 1]
        self._refresh_child_rect(parent, node)
        parent.entries.append(Entry(sibling.mbr(), child=sibling.page_id))

    def _choose_split(
        self, entries: List[Entry]
    ) -> Tuple[List[Entry], List[Entry]]:
        """ChooseSplitAxis (min margin sum) + ChooseSplitIndex (min
        overlap, ties by area)."""
        m = self.min_entries
        ndim = entries[0].rect.ndim
        best_axis, best_axis_margin = 0, None
        for axis in range(ndim):
            margin = 0.0
            for sort_key in (lambda e: (e.rect.lo[axis], e.rect.hi[axis]),
                             lambda e: (e.rect.hi[axis], e.rect.lo[axis])):
                ordered = sorted(entries, key=sort_key)
                for k in range(m, len(ordered) - m + 1):
                    margin += union_all(e.rect for e in ordered[:k]).margin()
                    margin += union_all(e.rect for e in ordered[k:]).margin()
            if best_axis_margin is None or margin < best_axis_margin:
                best_axis, best_axis_margin = axis, margin
        axis = best_axis
        best_split, best_key = None, None
        for sort_key in (lambda e: (e.rect.lo[axis], e.rect.hi[axis]),
                         lambda e: (e.rect.hi[axis], e.rect.lo[axis])):
            ordered = sorted(entries, key=sort_key)
            for k in range(m, len(ordered) - m + 1):
                mbr_a = union_all(e.rect for e in ordered[:k])
                mbr_b = union_all(e.rect for e in ordered[k:])
                key = (mbr_a.overlap_area(mbr_b), mbr_a.area() + mbr_b.area())
                if best_key is None or key < best_key:
                    best_key = key
                    best_split = (ordered[:k], ordered[k:])
        assert best_split is not None
        return best_split

    # ------------------------------------------------------------------
    # Deletion and condensation
    # ------------------------------------------------------------------

    def delete(self, rect: Rect, rowid: int, fragid: int = 0) -> bool:
        """Remove a data entry; returns whether it was found.

        Sets :attr:`condensed` when underfull nodes were dissolved (their
        entries reinserted), which invalidates open scans (Section 5.5).
        """
        self.condensed = False
        found = self._find_leaf_path(
            self.store.read(self.root_id), rect, rowid, fragid, []
        )
        if found is None:
            return False
        path, entry_index = found
        leaf = path[-1]
        del leaf.entries[entry_index]
        self.size -= 1
        self._condense(path)
        self._shrink_root()
        return True

    def _find_leaf_path(
        self,
        node: Node,
        rect: Rect,
        rowid: int,
        fragid: int,
        path: List[Node],
    ) -> Optional[Tuple[List[Node], int]]:
        path = path + [node]
        if node.leaf:
            for i, entry in enumerate(node.entries):
                if entry.rowid == rowid and entry.fragid == fragid and (
                    entry.rect == rect
                ):
                    return path, i
            return None
        for entry in node.entries:
            if entry.rect.contains(rect):
                child = self.store.read(entry.child)
                result = self._find_leaf_path(child, rect, rowid, fragid, path)
                if result is not None:
                    return result
        return None

    def _condense(self, path: List[Node]) -> None:
        orphans: List[Tuple[Entry, int]] = []
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            if len(node.entries) < self.min_entries:
                # Dissolve the node: remove it from the parent, queue its
                # surviving entries for reinsertion at the same level.
                parent.entries = [
                    e for e in parent.entries if e.child != node.page_id
                ]
                orphans.extend((entry, node.level) for entry in node.entries)
                self.store.free(node.page_id)
                self.condensed = True
            else:
                self.store.write(node)
                self._refresh_child_rect(parent, node)
        self.store.write(path[0])
        # Reinsert orphans bottom-up so leaf entries go back to leaves.
        for entry, level in sorted(orphans, key=lambda pair: pair[1]):
            self._reinserted_levels = set()
            self._insert_entry(entry, level)

    def _shrink_root(self) -> None:
        root = self.store.read(self.root_id)
        while not root.leaf and len(root.entries) == 1:
            child_id = root.entries[0].child
            self.store.free(root.page_id)
            self.root_id = child_id
            self.height -= 1
            root = self.store.read(child_id)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(self, query: Rect) -> List[Tuple[int, int]]:
        """All (rowid, fragid) whose rectangles intersect *query*."""
        self.last_node_accesses = 0
        results: List[Tuple[int, int]] = []
        stack = [self.root_id]
        while stack:
            node = self.store.read(stack.pop())
            self.last_node_accesses += 1
            for entry in node.entries:
                if entry.rect.intersects(query):
                    if node.leaf:
                        results.append((entry.rowid, entry.fragid))
                    else:
                        stack.append(entry.child)
        return results

    def count(self, query: Rect) -> int:
        return len(self.search(query))

    # ------------------------------------------------------------------
    # Introspection and integrity checking
    # ------------------------------------------------------------------

    def iter_nodes(self):
        stack = [self.root_id]
        while stack:
            node = self.store.read(stack.pop())
            yield node
            if not node.leaf:
                stack.extend(e.child for e in node.entries)

    def node_count(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    def check(self) -> None:
        """Verify structural invariants (the ``am_check`` contract):
        MBR containment, fill bounds, level consistency, size."""
        leaf_entries = 0
        for node in self.iter_nodes():
            if node.page_id != self.root_id and len(node.entries) < self.min_entries:
                raise AssertionError(
                    f"node {node.page_id} underfull: {len(node.entries)}"
                )
            if len(node.entries) > self.max_entries:
                raise AssertionError(f"node {node.page_id} overfull")
            if node.leaf:
                if node.level != 0:
                    raise AssertionError("leaf node with nonzero level")
                leaf_entries += len(node.entries)
                continue
            for entry in node.entries:
                child = self.store.read(entry.child)
                if child.level != node.level - 1:
                    raise AssertionError("level mismatch between parent and child")
                if entry.rect != child.mbr():
                    raise AssertionError(
                        f"parent rect of node {child.page_id} is not the "
                        f"exact MBR of its entries"
                    )
        if leaf_entries != self.size:
            raise AssertionError(
                f"size mismatch: counted {leaf_entries}, recorded {self.size}"
            )

    def stats(self) -> Dict[str, float]:
        nodes = list(self.iter_nodes())
        leaves = [n for n in nodes if n.leaf]
        return {
            "height": self.height,
            "size": self.size,
            "nodes": len(nodes),
            "leaves": len(leaves),
            "avg_fill": (
                sum(len(n.entries) for n in nodes) / (len(nodes) * self.max_entries)
            ),
        }
