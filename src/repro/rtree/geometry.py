"""Axis-aligned rectangles in *n* dimensions.

The minimum-bounding-rectangle arithmetic every R-tree variant relies on:
area, margin, enlargement, overlap, union.  Coordinates are floats (the
GR-tree uses its own integer region algebra from
:mod:`repro.temporal.regions`; this module serves the spatial R-trees).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple


@dataclass(frozen=True)
class Rect:
    """A closed axis-aligned box ``[lo_i, hi_i]`` in each dimension."""

    lo: Tuple[float, ...]
    hi: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError("lo and hi must have the same dimensionality")
        if any(l > h for l, h in zip(self.lo, self.hi)):
            raise ValueError(f"degenerate rectangle: lo={self.lo} hi={self.hi}")

    @staticmethod
    def of(*bounds: float) -> "Rect":
        """Build from interleaved bounds: ``Rect.of(x1, x2, y1, y2, ...)``."""
        if len(bounds) % 2:
            raise ValueError("bounds must come in (lo, hi) pairs")
        lo = tuple(bounds[0::2])
        hi = tuple(bounds[1::2])
        return Rect(lo, hi)

    @staticmethod
    def point(*coords: float) -> "Rect":
        return Rect(tuple(coords), tuple(coords))

    @property
    def ndim(self) -> int:
        return len(self.lo)

    # ------------------------------------------------------------------

    def area(self) -> float:
        result = 1.0
        for l, h in zip(self.lo, self.hi):
            result *= h - l
        return result

    def margin(self) -> float:
        """Sum of the side lengths (the R* split quality criterion)."""
        return sum(h - l for l, h in zip(self.lo, self.hi))

    def center(self) -> Tuple[float, ...]:
        return tuple((l + h) / 2.0 for l, h in zip(self.lo, self.hi))

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            tuple(min(a, b) for a, b in zip(self.lo, other.lo)),
            tuple(max(a, b) for a, b in zip(self.hi, other.hi)),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed to absorb *other* (Guttman's criterion)."""
        return self.union(other).area() - self.area()

    def intersects(self, other: "Rect") -> bool:
        return all(
            l1 <= h2 and l2 <= h1
            for l1, h1, l2, h2 in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(l > h for l, h in zip(lo, hi)):
            return None
        return Rect(lo, hi)

    def overlap_area(self, other: "Rect") -> float:
        inter = self.intersection(other)
        return 0.0 if inter is None else inter.area()

    def contains(self, other: "Rect") -> bool:
        return all(
            l1 <= l2 and h2 <= h1
            for l1, h1, l2, h2 in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def contains_point(self, *coords: float) -> bool:
        return all(l <= c <= h for l, c, h in zip(self.lo, coords, self.hi))

    def distance_to_center(self, other: "Rect") -> float:
        """Squared center distance (used by forced reinsertion ordering)."""
        return sum((a - b) ** 2 for a, b in zip(self.center(), other.center()))

    def __str__(self) -> str:
        pairs = ", ".join(
            f"[{l:g},{h:g}]" for l, h in zip(self.lo, self.hi)
        )
        return f"Rect({pairs})"


def union_all(rects: Iterable[Rect]) -> Rect:
    """Minimum bounding rectangle of a non-empty collection."""
    rects = iter(rects)
    try:
        result = next(rects)
    except StopIteration:
        raise ValueError("cannot bound an empty collection") from None
    for rect in rects:
        result = result.union(rect)
    return result
