"""Shared harness for the performance benchmarks (Perf-1..5).

Builds a GR-tree and the two baselines (max-timestamp R*-tree,
sequential scan) over the *same* generated bitemporal history, and
measures query/update I/O in page accesses -- the unit the GR-tree
evaluation argues in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.grtree.node import GRNodeStore
from repro.grtree.tree import GRTree
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore
from repro.temporal.chronon import Clock
from repro.temporal.extent import TimeExtent
from repro.workloads import (
    BitemporalWorkload,
    MaxTimestampRTree,
    SequentialScanIndex,
    WorkloadConfig,
)

PAGE_SIZE = 1024


def pages_touched(io) -> int:
    """Total page accesses in an ``IOStats`` delta.

    Goes through ``IOStats.to_dict()`` -- the same export the
    observability layer uses -- so the benchmarks and ``SHOW STATS``
    count I/O identically.
    """
    counters = io.to_dict()
    return counters["logical_reads"] + counters["logical_writes"]


@dataclass
class Setup:
    clock: Clock
    workload: BitemporalWorkload
    grtree: GRTree
    grtree_pool: BufferPool
    rstar_max: MaxTimestampRTree
    seqscan: SequentialScanIndex


class _Tee:
    def __init__(self, sinks) -> None:
        self.sinks = sinks

    def insert(self, extent, rowid):
        for sink in self.sinks:
            sink.insert(extent, rowid)

    def delete(self, extent, rowid):
        for sink in self.sinks:
            sink.delete(extent, rowid)


def build_setup(
    steps: int,
    now_relative_fraction: float,
    seed: int = 101,
    delete_fraction: float = 0.1,
    update_fraction: float = 0.1,
    time_horizon: int = 20,
) -> Setup:
    clock = Clock(now=100)
    pool = BufferPool(InMemoryPageStore(page_size=PAGE_SIZE), capacity=96)
    grtree = GRTree.create(
        GRNodeStore(pool), clock, time_horizon=time_horizon
    )
    rstar = MaxTimestampRTree(clock, page_size=PAGE_SIZE, buffer_capacity=96)
    seq = SequentialScanIndex(clock)
    workload = BitemporalWorkload(
        clock,
        WorkloadConfig(
            seed=seed,
            now_relative_fraction=now_relative_fraction,
            delete_fraction=delete_fraction,
            update_fraction=update_fraction,
        ),
    )
    workload.run(_Tee([grtree, rstar, seq]), steps)
    return Setup(clock, workload, grtree, pool, rstar, seq)


def measure_query_io(setup: Setup, queries: List[TimeExtent]) -> Dict[str, float]:
    """Average *search* I/O per query for each competitor.

    Fetching the true result rows costs the same for every competitor,
    so the metric counts what differs: index node accesses, plus -- for
    the max-timestamp R*-tree -- one fetch per false-positive candidate
    that the exact-geometry check then rejects; for the sequential scan,
    every heap page.  All three answers are asserted identical.
    """
    totals = {"grtree": 0.0, "rstar_max": 0.0, "seqscan": 0.0}
    for query in queries:
        expected = setup.workload.oracle_overlapping(query)
        got = sorted(r for r, _ in setup.grtree.search_all(query))
        assert got == expected, "GR-tree diverged from the oracle"
        totals["grtree"] += setup.grtree.last_node_accesses
        assert setup.rstar_max.search(query) == expected
        totals["rstar_max"] += (
            setup.rstar_max.last_node_accesses
            + setup.rstar_max.last_false_positives
        )
        assert setup.seqscan.search(query) == expected
        totals["seqscan"] += setup.seqscan.last_pages_read
    n = max(1, len(queries))
    return {name: total / n for name, total in totals.items()}


def standard_queries(setup: Setup, count: int = 20) -> List[TimeExtent]:
    return [setup.workload.window_query(10, 10) for _ in range(count)]
