"""Perf floor for the invariant linter.

The lint job sits in front of every CI run, so it must stay fast: a
full-tree ``repro lint --strict src/`` has to finish well under 10
seconds or it stops being a pre-commit-sized check.  The measured run
is appended to ``BENCH_lint.json`` so the cost trends across PRs.
"""

import pathlib
import time

SRC = pathlib.Path(__file__).resolve().parents[1] / "src"

LINT_BUDGET_S = 10.0


def test_full_tree_lint_under_budget(append_bench):
    from repro.analysis import lint_paths

    start = time.perf_counter()
    report = lint_paths([str(SRC)], strict=True)
    elapsed = time.perf_counter() - start

    # The floor is meaningless if the run was degenerate.
    assert report.files_scanned > 50
    assert report.active == [], "\n" + report.to_text()

    append_bench(
        "BENCH_lint.json",
        {
            "files_scanned": report.files_scanned,
            "findings_total": len(report.findings),
            "findings_suppressed": report.suppressed_count,
            "lint_seconds": round(elapsed, 3),
            "budget_seconds": LINT_BUDGET_S,
        },
    )
    assert elapsed < LINT_BUDGET_S, (
        f"full-tree lint took {elapsed:.2f}s (budget {LINT_BUDGET_S}s)"
    )
