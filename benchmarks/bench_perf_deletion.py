"""Perf-4: deletion strategies (Section 5.5).

Compares the three ways of emptying a qualification out of the index:

* restart-always -- re-traverse from the root after *every* deletion
  (the naive behaviour the paper wants to avoid);
* restart-on-condense -- the paper's compromise: reuse the cursor's
  traversal state, restarting only when the tree actually condensed;
* bulk -- drop and rebuild via bulk loading.

Expected shape: restart-on-condense reads clearly fewer pages than
restart-always; bulk wins when most of the data goes.
"""

import pytest

from _perf import PAGE_SIZE
from repro.grtree.bulk import bulk_delete
from repro.grtree.node import GRNodeStore
from repro.grtree.tree import GRTree
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore
from repro.temporal.chronon import Clock
from repro.temporal.extent import TimeExtent
from repro.temporal.variables import NOW, UC
from repro.workloads import BitemporalWorkload, WorkloadConfig


def build(seed=71, steps=900):
    clock = Clock(now=100)
    pool = BufferPool(InMemoryPageStore(page_size=PAGE_SIZE), capacity=8)
    tree = GRTree.create(GRNodeStore(pool), clock)
    workload = BitemporalWorkload(
        clock, WorkloadConfig(seed=seed, now_relative_fraction=0.5)
    )
    workload.populate(tree, steps)
    query = TimeExtent(clock.now, UC, clock.now - 40, NOW)
    return clock, pool, tree, workload, query


def delete_restart_always(tree, query):
    """Re-open a fresh cursor (root traversal) after every deletion."""
    deleted = 0
    while True:
        cursor = tree.search(query)
        entry = cursor.next()
        if entry is None:
            return deleted
        assert tree.delete(entry.extent(), entry.rowid)
        deleted += 1


def delete_restart_on_condense(tree, query):
    """The paper's compromise, as implemented by the blade's cursor."""
    cursor = tree.search(query)
    deleted = 0
    while True:
        entry = cursor.next()
        if entry is None:
            return deleted
        assert tree.delete(entry.extent(), entry.rowid)
        deleted += 1


@pytest.mark.parametrize(
    "strategy",
    ["restart_always", "restart_on_condense", "bulk"],
)
def test_perf4_deletion_strategies(benchmark, strategy, write_artifact):
    def run():
        clock, pool, tree, workload, query = build()
        before = pool.stats.snapshot()
        if strategy == "restart_always":
            deleted = delete_restart_always(tree, query)
        elif strategy == "restart_on_condense":
            deleted = delete_restart_on_condense(tree, query)
        else:
            q_region = query.region(clock.now)
            tree, deleted = bulk_delete(
                tree,
                lambda e: e.region(clock.now).overlaps(q_region),
            )
        tree.check()
        io = pool.stats - before
        return deleted, io.logical_reads, io.logical_writes

    deleted, reads, writes = benchmark.pedantic(run, rounds=3, iterations=1)
    assert deleted > 100

    write_artifact(
        f"perf4_{strategy}.txt",
        f"Perf-4 {strategy}: deleted {deleted} entries, "
        f"logical reads {reads}, writes {writes}\n",
    )


def test_perf4_compromise_beats_restart_always(benchmark, write_artifact):
    results = {}
    for name, runner in (
        ("restart_always", delete_restart_always),
        ("restart_on_condense", delete_restart_on_condense),
    ):
        clock, pool, tree, workload, query = build()
        before = pool.stats.snapshot()
        deleted = runner(tree, query)
        io = pool.stats - before
        results[name] = (deleted, io.logical_reads)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # Identical work...
    assert results["restart_always"][0] == results["restart_on_condense"][0]
    # ... but the compromise reads meaningfully fewer pages.
    assert (
        results["restart_on_condense"][1] < 0.9 * results["restart_always"][1]
    ), results

    write_artifact(
        "perf4_summary.txt",
        "Perf-4 summary (same deletions, logical page reads):\n"
        f"  restart always      : {results['restart_always'][1]}\n"
        f"  restart on condense : {results['restart_on_condense'][1]}\n",
    )
