"""Figure 3: the R*-tree example -- MBRs, a window query, and goodness.

Builds the R*-tree over clustered rectangles, runs the figure's window
query, asserts the figure's point (the query touches only the subtrees
whose MBRs it overlaps, far fewer than a full scan), and reports the
dead-space/overlap goodness metrics against Guttman's R-tree.
"""

import random

from repro.rtree.geometry import Rect, union_all
from repro.rtree.guttman import GuttmanRTree
from repro.rtree.node import NodeStore
from repro.rtree.rstar import RStarTree
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore


def clustered_rects(seed=1999, clusters=20, per_cluster=40):
    rng = random.Random(seed)
    rects = []
    for _ in range(clusters):
        cx, cy = rng.uniform(0, 900), rng.uniform(0, 900)
        for _ in range(per_cluster):
            x, y = cx + rng.uniform(0, 80), cy + rng.uniform(0, 80)
            rects.append(Rect((x, y), (x + rng.uniform(1, 8), y + rng.uniform(1, 8))))
    return rects


def build(cls, rects, page_size=512):
    pool = BufferPool(InMemoryPageStore(page_size=page_size), capacity=256)
    tree = cls(NodeStore(pool, ndim=2))
    for rowid, rect in enumerate(rects):
        tree.insert(rect, rowid)
    return tree


def goodness(tree):
    """Dead space and sibling overlap of the leaf level (the figure's
    two 'goodness' properties)."""
    leaves = [n for n in tree.iter_nodes() if n.leaf]
    mbrs = [n.mbr() for n in leaves]
    dead = sum(
        node.mbr().area() - sum(e.rect.area() for e in node.entries)
        for node in leaves
    )
    overlap = sum(
        a.overlap_area(b) for i, a in enumerate(mbrs) for b in mbrs[i + 1:]
    )
    return dead, overlap


def test_figure3_rstar_window_query(benchmark, write_artifact):
    rects = clustered_rects()
    tree = build(RStarTree, rects)
    tree.check()
    query = Rect((100.0, 100.0), (300.0, 300.0))

    results = benchmark(tree.search, query)

    expected = sorted(i for i, r in enumerate(rects) if r.intersects(query))
    assert sorted(r for r, _ in results) == expected
    # The figure's point: the query descends only into overlapping
    # subtrees -- a small fraction of the tree.
    assert tree.last_node_accesses < tree.node_count() / 2

    r_dead, r_overlap = goodness(tree)
    guttman = build(GuttmanRTree, rects)
    g_dead, g_overlap = goodness(guttman)
    # The R* split should not be worse on clustered data.
    assert r_overlap <= g_overlap * 1.05

    lines = [
        "Figure 3 reproduction: R*-tree over clustered rectangles",
        f"  rectangles           : {len(rects)}",
        f"  tree height          : {tree.height}",
        f"  nodes                : {tree.node_count()}",
        f"  query                : {query}",
        f"  matches              : {len(expected)}",
        f"  node accesses        : {tree.last_node_accesses}",
        "",
        "Goodness (leaf level)      dead space      sibling overlap",
        f"  R*-tree  [BEC90]      {r_dead:14.1f}   {r_overlap:16.1f}",
        f"  R-tree   [GUT84]      {g_dead:14.1f}   {g_overlap:16.1f}",
    ]
    write_artifact("figure3_rstar.txt", "\n".join(lines) + "\n")
