"""Perf-Obs: the observability layer must be (nearly) free when off.

The GR-tree insert path is the hottest instrumented code: every insert
crosses the guarded ``obs`` checks in ``GRTree.insert`` plus the node
locking protocol.  This benchmark times the same insert workload three
ways -- no hub at all (``obs=None``), a *disabled* hub, and an enabled
hub -- interleaving the variants round-robin and taking the minimum per
variant so scheduler noise cancels.  The contract asserted here is the
one DESIGN.md promises: a disabled hub costs < 5% on the insert path.
"""

import gc
import statistics
import time

from _perf import PAGE_SIZE
from repro.grtree.node import GRNodeStore
from repro.grtree.tree import GRTree
from repro.obs import Observability
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore
from repro.temporal.chronon import Clock
from repro.workloads import BitemporalWorkload, WorkloadConfig

STEPS = 400
ROUNDS = 7
BUDGET = 0.05  # the <5% contract from ISSUE/DESIGN


def _run_insert_workload(obs) -> float:
    clock = Clock(now=100)
    pool = BufferPool(InMemoryPageStore(page_size=PAGE_SIZE), capacity=96)
    tree = GRTree.create(GRNodeStore(pool), clock, time_horizon=20)
    tree.obs = obs
    workload = BitemporalWorkload(
        clock, WorkloadConfig(seed=7, now_relative_fraction=0.5)
    )
    start = time.perf_counter()
    workload.populate(tree, STEPS)
    return time.perf_counter() - start


def measure() -> dict:
    """Per-variant times for each round, all variants adjacent in time.

    Interpreter speed drifts over the life of a pytest process, so
    comparing global minimums mixes early (cold) and late (hot) rounds.
    Instead every round times all three variants back to back -- drift
    within a round is negligible -- and the caller compares *per-round
    ratios*, taking the median across rounds.
    """
    variants = [
        ("no_hub", lambda: _run_insert_workload(None)),
        ("disabled", lambda: _run_insert_workload(
            Observability(enabled=False)
        )),
        ("enabled", lambda: _run_insert_workload(Observability())),
    ]
    rounds = {name: [] for name, _ in variants}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        _run_insert_workload(None)  # warm-up, untimed
        for round_no in range(ROUNDS):
            times = {}
            # rotate the order so no variant systematically runs first
            for offset in range(len(variants)):
                name, run = variants[(round_no + offset) % len(variants)]
                times[name] = run()
            for name, elapsed in times.items():
                rounds[name].append(elapsed)
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    return rounds


def overhead(rounds: dict, variant: str) -> float:
    """Median per-round slowdown of *variant* relative to ``no_hub``."""
    ratios = [
        with_obs / base
        for with_obs, base in zip(rounds[variant], rounds["no_hub"])
    ]
    return statistics.median(ratios) - 1.0


def test_disabled_obs_insert_overhead_under_budget(write_artifact):
    rounds = measure()
    overhead_disabled = overhead(rounds, "disabled")
    overhead_enabled = overhead(rounds, "enabled")
    base = min(rounds["no_hub"])
    write_artifact(
        "perf_obs_overhead.txt",
        "Perf-Obs: GR-tree insert path, median over "
        f"{ROUNDS} interleaved rounds of {STEPS} steps\n"
        f"  obs=None    : {base * 1000:8.2f} ms (best round)\n"
        f"  obs disabled: {overhead_disabled:+.2%}\n"
        f"  obs enabled : {overhead_enabled:+.2%}\n",
    )
    assert overhead_disabled < BUDGET, (
        f"disabled observability costs {overhead_disabled:.2%} on the "
        f"insert path (budget {BUDGET:.0%})"
    )
    # the enabled hub pays for real counters, but must stay sane
    assert overhead_enabled < 1.0
