"""Perf-6: the price of generality (the conclusion's open question).

The paper proposes a generic extendible access method; the natural
question is what generality costs.  This bench runs the same spatial
workload through the dedicated R-tree access method (``rtree_am``) and
through the GiST instantiated as an R-tree (``gist_am`` +
``gist_rect_ops``), comparing wall-clock per query and result equality.
Expected shape: same answers; the generic method within a small factor.
"""

import random

import pytest

from repro.gist import register_gist_blade
from repro.rblade import register_rtree_blade
from repro.rblade.blade import box_output
from repro.rtree.geometry import Rect
from repro.server import DatabaseServer


@pytest.fixture(scope="module")
def server():
    server = DatabaseServer()
    server.create_sbspace("spc")
    register_rtree_blade(server)
    register_gist_blade(server)
    server.prefer_virtual_index = True
    server.execute("CREATE TABLE a (label LVARCHAR, geom Box)")
    server.execute("CREATE TABLE b (label LVARCHAR, geom Box)")
    server.execute("CREATE INDEX native ON a(geom) USING rtree_am IN spc")
    server.execute(
        "CREATE INDEX generic ON b(geom gist_rect_ops) USING gist_am IN spc"
    )
    rng = random.Random(2024)
    for i in range(500):
        x, y = rng.uniform(0, 500), rng.uniform(0, 500)
        rect = box_output(Rect((x, y), (x + 4, y + 4)))
        server.execute(f"INSERT INTO a VALUES ('s{i}', '{rect}')")
        server.execute(f"INSERT INTO b VALUES ('s{i}', '{rect}')")
    return server


QUERY = "(100, 100, 260, 260)"


def test_perf6_answers_identical(server, benchmark, write_artifact):
    native = benchmark(
        server.execute,
        f"SELECT label FROM a WHERE Overlap(geom, '{QUERY}')",
    )
    generic = server.execute(
        f"SELECT label FROM b WHERE GS_Overlap(geom, '{QUERY}')"
    )
    assert sorted(r["label"] for r in native) == sorted(
        r["label"] for r in generic
    )
    assert len(native) > 20
    write_artifact(
        "perf6_equivalence.txt",
        f"Perf-6: native rtree_am and generic gist_am agree on "
        f"{len(native)} results\n",
    )


def test_perf6_generic_query(server, benchmark, write_artifact):
    rows = benchmark(
        server.execute,
        f"SELECT label FROM b WHERE GS_Overlap(geom, '{QUERY}')",
    )
    assert len(rows) > 20
    assert "consistent" in server.execute("CHECK INDEX generic")
    write_artifact(
        "perf6_generic.txt",
        f"Perf-6: generic GiST rect query returned {len(rows)} rows\n",
    )
