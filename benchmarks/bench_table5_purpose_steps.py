"""Table 5 / Appendix A: the steps of each purpose function.

Enables step-level tracing (the ``grt`` trace class at level 2), drives
every purpose function through SQL, and asserts the traced steps match
the paper's step lists: grt_create's seven steps, grt_open's fast path
after create and its full path later, the Cursor life cycle, and the
delete-reuses-cursor behaviour of Section 5.5.
"""

import pytest

from repro.datablade import register_grtree_blade
from repro.server import DatabaseServer
from repro.temporal.chronon import Clock, format_chronon


def day(chronon):
    return format_chronon(chronon)


@pytest.fixture()
def server():
    server = DatabaseServer(clock=Clock(now=100))
    server.create_sbspace("spc")
    # This benchmark asserts the paper's literal "long way" grt_open
    # step list, so the handle cache (which skips those steps on a
    # reopen) is turned off here.
    register_grtree_blade(server, handle_cache=False)
    server.execute("CREATE TABLE t (name LVARCHAR, te GRT_TimeExtent_t)")
    server.prefer_virtual_index = True
    server.trace.set_level("grt", 2)
    return server


def steps(server, function):
    prefix = function + "("
    return [t for t in server.trace.texts("grt") if t.startswith(prefix)]


def test_table5_create_and_open_steps(server, benchmark, write_artifact):
    benchmark.pedantic(
        lambda: server.execute("CREATE INDEX gi ON t(te) USING grtree_am IN spc"),
        rounds=1, iterations=1,
    )
    create_steps = steps(server, "grt_create")
    # The seven steps of Table 5 (checks, BLOB, metadata record, open).
    assert len(create_steps) == 7
    assert "create Tree object" in create_steps[0]
    assert "column types accepted" in create_steps[1]
    assert "operator class accepted" in create_steps[2]
    assert "no equivalent index exists" in create_steps[3]
    assert "created BLOB" in create_steps[4]
    assert "grtree_indexdata" in create_steps[5]
    assert "opened the BLOB" in create_steps[6]

    # grt_open invoked right after grt_create: step (1), exit.
    open_steps = steps(server, "grt_open")
    assert any("right after grt_create" in s for s in open_steps)

    # A later statement opens the index the long way: steps 2-4.
    server.trace.clear()
    server.execute(
        f"INSERT INTO t VALUES ('a', '{day(100)}, UC, {day(95)}, NOW')"
    )
    open_steps = steps(server, "grt_open")
    assert any("create Tree object" in s for s in open_steps)
    assert any("BLOB handle" in s for s in open_steps)
    assert any("opened the BLOB" in s for s in open_steps)

    write_artifact(
        "table5_create_open.txt",
        "grt_create steps:\n" + "\n".join(f"  {s}" for s in create_steps)
        + "\n\ngrt_open (subsequent statement) steps:\n"
        + "\n".join(f"  {s}" for s in open_steps) + "\n",
    )


def test_table5_scan_and_update_steps(server, benchmark, write_artifact):
    server.execute("CREATE INDEX gi ON t(te) USING grtree_am IN spc")
    for i in range(30):
        server.execute(
            f"INSERT INTO t VALUES ('r{i}', '{day(100)}, UC, {day(95)}, NOW')"
        )
    q = f"'{day(100)}, UC, {day(100)}, NOW'"

    server.trace.clear()
    rows = benchmark(
        server.execute, f"SELECT name FROM t WHERE Overlaps(te, {q})"
    )
    assert len(rows) == 30

    begin = steps(server, "grt_beginscan")
    assert any("qualification descriptor" in s for s in begin)
    assert any("create Cursor" in s for s in begin)
    getnext = steps(server, "grt_getnext")
    assert len(getnext) >= 30  # one retrowid formed per returned row
    end = steps(server, "grt_endscan")
    assert any("deleted Cursor" in s for s in end)

    # Deletion: Table 5's grt_delete plus the Section 5.5 condense note.
    server.trace.clear()
    deleted = server.execute(f"DELETE FROM t WHERE Overlaps(te, {q})")
    assert deleted == 30
    delete_steps = steps(server, "grt_delete")
    assert any("Tree.delete()" in s for s in delete_steps)

    # grt_update = grt_delete + grt_insert (Table 5's last row).
    server.execute(
        f"INSERT INTO t VALUES ('u', '{day(100)}, UC, {day(100)}, NOW')"
    )
    server.trace.clear()
    server.execute(
        f"UPDATE t SET te = '{day(100)}, UC, {day(99)}, NOW' "
        f"WHERE Equal(te, {q})"
    )
    update_steps = steps(server, "grt_update")
    assert any("invoke grt_delete" in s for s in update_steps)
    assert any("invoke grt_insert" in s for s in update_steps)

    write_artifact(
        "table5_scan_update.txt",
        "grt_beginscan steps:\n" + "\n".join(f"  {s}" for s in begin)
        + "\n\ngrt_delete steps (first row):\n"
        + "\n".join(f"  {s}" for s in delete_steps[:4])
        + "\n\ngrt_update steps:\n"
        + "\n".join(f"  {s}" for s in update_steps) + "\n",
    )
