"""Shared fixtures and artifact plumbing for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (or one
series of the performance leg), asserts the *shape* the paper reports,
and writes the regenerated artifact under ``benchmarks/out/`` so it can
be diffed against the paper by eye.
"""

import datetime
import json
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def write_artifact(artifact_dir):
    def _write(name: str, text: str) -> pathlib.Path:
        path = artifact_dir / name
        path.write_text(text)
        return path

    return _write


@pytest.fixture(scope="session")
def append_bench(artifact_dir):
    """Append one timestamped record to a ``BENCH_*.json`` history file.

    Each run of a perf benchmark *appends* to ``{"history": [...]}``
    instead of overwriting, so the file is a queryable performance
    trajectory across PRs.  A legacy single-record file (the old
    overwrite format) is wrapped as the first history entry.
    """

    def _append(name: str, record: dict) -> pathlib.Path:
        path = artifact_dir / name
        history = []
        if path.exists():
            try:
                existing = json.loads(path.read_text())
            except ValueError:
                existing = None
            if isinstance(existing, dict) and isinstance(
                existing.get("history"), list
            ):
                history = existing["history"]
            elif isinstance(existing, dict):
                history = [existing]  # legacy overwrite-format file
        stamped = {
            "recorded_at": datetime.datetime.now(
                datetime.timezone.utc
            ).isoformat(timespec="seconds"),
            **record,
        }
        history.append(stamped)
        path.write_text(json.dumps({"history": history}, indent=2, sort_keys=True))
        return path

    return _append
