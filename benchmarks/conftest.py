"""Shared fixtures and artifact plumbing for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (or one
series of the performance leg), asserts the *shape* the paper reports,
and writes the regenerated artifact under ``benchmarks/out/`` so it can
be diffed against the paper by eye.
"""

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def write_artifact(artifact_dir):
    def _write(name: str, text: str) -> pathlib.Path:
        path = artifact_dir / name
        path.write_text(text)
        return path

    return _write
