"""Perf fault-overhead: failpoints must be (nearly) free when unused.

Every failpoint in ``repro.faults.CATALOG`` sits on a hot path -- WAL
appends, sbspace page I/O, buffer flushes, lock acquisition -- guarded
by ``if self.faults is not None``.  This benchmark runs the same
end-to-end SQL workload (inserts + index-backed window queries, the
statement path that crosses every storage failpoint) three ways:

* ``no_registry``  -- ``faults=None``, the shipping default: the guard
  is a single attribute test;
* ``unarmed``      -- a :class:`FaultRegistry` attached but with nothing
  armed: each traversal adds one dict probe that misses;
* ``armed_elsewhere`` -- a registry with a failpoint armed at a point
  this workload never traverses (``osfile.read``): arming one point
  must not tax the others.

Methodology is the interleaved-round scheme of
``bench_perf_obs_overhead``: each round times all variants back to back
with the GC off, and the asserted number is the *median of per-round
ratios*, so interpreter drift cancels.  The gate: an unarmed registry
costs < 10% on the end-to-end statement path (the per-hit cost is one
missed dict lookup; the margin is scheduler noise on a full SQL
round-trip).
"""

import gc
import statistics
import time

from repro.datablade import register_grtree_blade
from repro.faults import FaultRegistry
from repro.server import DatabaseServer

INSERTS = 120
QUERIES = 20
ROUNDS = 7
BUDGET = 0.10  # unarmed-registry overhead gate on the statement path

EXTENT = "'01/01/98, UC, 01/01/98, NOW'"
QUERY = f"SELECT n FROM e WHERE Overlaps(te, {EXTENT})"


def build_server(faults) -> DatabaseServer:
    server = DatabaseServer(faults=faults)
    server.create_sbspace("spc")
    register_grtree_blade(server)
    server.prefer_virtual_index = True
    server.obs.disable()  # measure the failpoints, not the instrumentation
    server.execute("CREATE TABLE e (n LVARCHAR, te GRT_TimeExtent_t)")
    server.execute("CREATE INDEX gi ON e(te) USING grtree_am IN spc")
    server.clock.set_text("01/01/98")
    return server


def run_workload(faults) -> float:
    """One timed pass: fresh server, insert + query through the index.

    The inserts cross ``wal.append``/``wal.fsync``/``sbspace.page_write``/
    ``buffer.flush``/``lock.acquire``; the queries cross
    ``sbspace.page_read``.  Setup (CREATE TABLE/INDEX) is untimed.
    """
    server = build_server(faults)
    start = time.perf_counter()
    for i in range(INSERTS):
        server.execute(f"INSERT INTO e VALUES ('r{i}', {EXTENT})")
    for _ in range(QUERIES):
        rows = server.execute(QUERY)
    elapsed = time.perf_counter() - start
    assert len(rows) == INSERTS
    return elapsed


def make_armed_elsewhere() -> FaultRegistry:
    registry = FaultRegistry()
    # Armed, live, never traversed by a sbspace-backed workload.
    registry.set_fault("osfile.read", "raise", times=None)
    return registry


def measure() -> dict:
    variants = [
        ("no_registry", lambda: run_workload(None)),
        ("unarmed", lambda: run_workload(FaultRegistry())),
        ("armed_elsewhere", lambda: run_workload(make_armed_elsewhere())),
    ]
    rounds = {name: [] for name, _ in variants}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        run_workload(None)  # warm-up, untimed
        for round_no in range(ROUNDS):
            times = {}
            # rotate the order so no variant systematically runs first
            for offset in range(len(variants)):
                name, run = variants[(round_no + offset) % len(variants)]
                times[name] = run()
            for name, elapsed in times.items():
                rounds[name].append(elapsed)
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    return rounds


def overhead(rounds: dict, variant: str) -> float:
    """Median per-round slowdown of *variant* vs ``no_registry``."""
    ratios = [
        with_faults / base
        for with_faults, base in zip(rounds[variant], rounds["no_registry"])
    ]
    return statistics.median(ratios) - 1.0


def test_unarmed_registry_overhead_under_budget(write_artifact):
    rounds = measure()
    overhead_unarmed = overhead(rounds, "unarmed")
    overhead_armed_elsewhere = overhead(rounds, "armed_elsewhere")
    base = min(rounds["no_registry"])
    write_artifact(
        "perf_fault_overhead.txt",
        "Perf fault-overhead: end-to-end statement path, median over "
        f"{ROUNDS} interleaved rounds of {INSERTS} inserts + "
        f"{QUERIES} queries\n"
        f"  faults=None     : {base * 1000:8.2f} ms (best round)\n"
        f"  unarmed registry: {overhead_unarmed:+.2%}\n"
        f"  armed elsewhere : {overhead_armed_elsewhere:+.2%}\n",
    )
    assert overhead_unarmed < BUDGET, (
        f"an unarmed fault registry costs {overhead_unarmed:.2%} on the "
        f"statement path (budget {BUDGET:.0%})"
    )
    assert overhead_armed_elsewhere < BUDGET, (
        f"a registry armed at an untraversed point costs "
        f"{overhead_armed_elsewhere:.2%} (budget {BUDGET:.0%})"
    )
