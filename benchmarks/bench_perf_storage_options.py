"""Perf-5: index storage options and their concurrency cost (§5.3).

Quantifies the paper's analysis of where a virtual index can live:

* one large object for the whole index (the paper's choice): minimal
  open/close traffic and handle storage, but the coarsest locking --
  any writer serializes everyone;
* one large object per node: finer locking in principle, but bulky
  handles in every parent entry and an open/close per node touched;
* an OS file: no services at all (no locking, no logging).
"""

import pytest

from repro.datablade import register_grtree_blade
from repro.server import DatabaseServer
from repro.storage.locks import LockConflictError
from repro.storage.sbspace import LargeObjectHandle, Sbspace
from repro.temporal.chronon import Clock, format_chronon


def day(chronon):
    return format_chronon(chronon)


def make_server():
    server = DatabaseServer(clock=Clock(now=100))
    server.create_sbspace("spc")
    register_grtree_blade(server)
    server.execute("CREATE TABLE t (name LVARCHAR, te GRT_TimeExtent_t)")
    server.execute("CREATE INDEX gi ON t(te) USING grtree_am IN spc")
    server.prefer_virtual_index = True
    return server


def test_perf5_single_lo_serializes_writers(benchmark, write_artifact):
    """Writer vs readers on the one-LO design: every reader blocks for
    the whole writer transaction."""
    server = make_server()
    for i in range(50):
        server.execute(
            f"INSERT INTO t VALUES ('r{i}', '{day(100)}, UC, {day(95)}, NOW')"
        )
    query = (
        f"SELECT name FROM t WHERE "
        f"Overlaps(te, '{day(100)}, UC, {day(100)}, NOW')"
    )

    def writer_blocks_n_readers(n=5):
        writer = server.create_session()
        server.execute("BEGIN WORK", writer)
        server.execute(
            f"INSERT INTO t VALUES ('w', '{day(100)}, UC, {day(95)}, NOW')",
            writer,
        )
        blocked = 0
        for _ in range(n):
            reader = server.create_session()
            server.execute("BEGIN WORK", reader)
            try:
                server.execute(query, reader)
            except LockConflictError:
                blocked += 1
            server.execute("ROLLBACK WORK", reader)
        server.execute("ROLLBACK WORK", writer)
        return blocked

    blocked = benchmark.pedantic(writer_blocks_n_readers, rounds=3, iterations=1)
    assert blocked == 5  # total serialization, as the paper warns

    write_artifact(
        "perf5_locking.txt",
        f"Perf-5: single-LO storage blocked {blocked}/5 concurrent "
        f"readers during one writer transaction\n"
        f"(lock conflicts observed so far: {server.locks.conflicts})\n",
    )


def test_perf5_lo_per_node_handle_and_open_cost(benchmark, write_artifact):
    """The LO-per-node drawbacks the paper names: handle bytes stored in
    parent entries, and an open/close per node access."""
    space = Sbspace(page_size=1024)
    node_count = 64

    def simulate_lo_per_node():
        blobs = [space.create() for _ in range(node_count)]
        # Opening the root-to-leaf path of every one of 20 searches.
        opens = 0
        for i in range(20):
            for blob in blobs[i % 4 :: 8][:3]:
                space.open(blob.handle)
                space.close(blob.handle)
                opens += 2
        handle_bytes = sum(b.handle.size_bytes for b in blobs)
        for blob in blobs:
            space.drop(blob.handle)
        return opens, handle_bytes

    opens, handle_bytes = benchmark(simulate_lo_per_node)

    pointer_bytes = node_count * 8  # page-id child pointers
    assert handle_bytes > 5 * pointer_bytes

    write_artifact(
        "perf5_lo_per_node.txt",
        "Perf-5: one-LO-per-node design\n"
        f"  handle storage for {node_count} nodes: {handle_bytes} bytes "
        f"(vs {pointer_bytes} bytes of page-id pointers)\n"
        f"  open/close calls for 20 searches: {opens}\n",
    )


def test_perf5_os_file_vs_sbspace_services(benchmark, tmp_path, write_artifact):
    """The OS file gives durability-by-filesystem but neither locks nor
    a WAL; the sbspace gives both automatically."""
    from repro.grtree.node import GRNodeStore
    from repro.grtree.tree import GRTree
    from repro.storage.buffer import BufferPool
    from repro.storage.osfile import OSFilePageStore
    from repro.temporal.extent import TimeExtent
    from repro.temporal.variables import NOW, UC

    clock = Clock(now=100)
    path = str(tmp_path / "bench.grt")

    def build_on_os_file():
        import os

        if os.path.exists(path):
            os.remove(path)
        with OSFilePageStore(path, page_size=1024) as store:
            pool = BufferPool(store, capacity=64)
            tree = GRTree.create(GRNodeStore(pool), clock)
            for i in range(300):
                tree.insert(TimeExtent(100, UC, 95, NOW), rowid=i)
            pool.flush()
            return tree.meta_page

    meta_page = benchmark.pedantic(build_on_os_file, rounds=3, iterations=1)

    with OSFilePageStore(path, page_size=1024) as store:
        pool = BufferPool(store, capacity=64)
        tree = GRTree.open(GRNodeStore(pool), clock, meta_page=meta_page)
        assert tree.size == 300

    write_artifact(
        "perf5_os_file.txt",
        "Perf-5: OS-file storage round-trip succeeded (300 entries), "
        "with zero locking or logging services -- the developer would "
        "have to build both (Section 5.3).\n",
    )


def test_perf5_in_between_design(benchmark, write_artifact):
    """Section 5.3's suggested middle ground: several nodes per large
    object.  Sweep the group size and report the two costs it trades:
    handle bytes per node (falls as groups grow) and the fraction of
    node pairs sharing a lock unit (rises as groups grow)."""
    from repro.storage.multiblob import MultiBlobPageStore
    from repro.storage.sbspace import Sbspace

    def sweep():
        rows = []
        for pages_per_lo in (1, 4, 16, 64):
            space = Sbspace(page_size=512)
            store = MultiBlobPageStore(space, pages_per_lo=pages_per_lo)
            pages = [store.allocate_page() for _ in range(64)]
            handles = [store.handle_for_page(p).value for p in pages]
            shared = sum(
                1
                for i in range(len(pages))
                for j in range(i + 1, len(pages))
                if handles[i] == handles[j]
            )
            total_pairs = len(pages) * (len(pages) - 1) // 2
            rows.append(
                (
                    pages_per_lo,
                    store.group_count(),
                    store.handle_bytes_per_child_pointer,
                    shared / total_pairs,
                )
            )
        return rows

    rows = benchmark(sweep)
    # The trade-off is monotone in both directions.
    overheads = [r[2] for r in rows]
    collisions = [r[3] for r in rows]
    assert overheads == sorted(overheads, reverse=True)
    assert collisions == sorted(collisions)

    lines = [
        "Perf-5 in-between design (64 node pages):",
        "  pages/LO  LOs  handle-bytes/node  same-lock pair fraction",
    ]
    for pages_per_lo, groups, overhead, fraction in rows:
        lines.append(
            f"  {pages_per_lo:8d} {groups:4d} {overhead:17.1f}  {fraction:22.3f}"
        )
    write_artifact("perf5_in_between.txt", "\n".join(lines) + "\n")
