"""Perf concurrency: the serving layer must turn clients into throughput.

Closed-loop clients with think time, TPC-style: each client issues a
scan+update round, then "thinks" for ``THINK_SECONDS`` before the next
one (``time.sleep`` releases the GIL, so think time is genuinely idle).
A single such client leaves the engine idle most of the wall clock;
concurrent clients overlap their think time against each other's
statements, so aggregate throughput must rise until the serialized
engine saturates.  (Without think time an in-process benchmark cannot
scale at all: clients, readers, and workers share one GIL, so the
engine's CPU-bound statement work is serialized no matter how many
clients pile on.)  The benchmark drives 1, 4, and 8 concurrent wire
clients on *disjoint* keys and gates on:

* **scaling**: 4 clients deliver at least ``SCALING_FLOOR`` times the
  single-client throughput;
* **zero lost updates**: every client's inserts land exactly once and
  its final counter value is the last one it wrote;
* **lock hygiene**: a client killed mid-transaction releases its locks
  and never blocks the others longer than the lock-acquire timeout.

Per-statement latency is reported as p50/p99.  Machine-readable results
land in ``benchmarks/out/BENCH_net_concurrency.json`` (a CI artifact;
the gates fail this test, and therefore CI, on regression).
"""

import threading
import time
from collections import Counter

from repro.datablade import register_grtree_blade
from repro.net import NetServer, ReproClient
from repro.server import DatabaseServer
from repro.temporal.chronon import Clock, format_chronon

CLIENT_COUNTS = (1, 4, 8)
OPS_PER_CLIENT = 80          # each op is one scan + one update + one insert
SCALING_FLOOR = 2.0          # 4 clients vs 1, the CI gate
LOCK_TIMEOUT = 2.0
SCAN_EVERY = 4               # 1 scan per SCAN_EVERY update+insert pairs
THINK_SECONDS = 0.003        # closed-loop client think time per op


def build_served():
    db = DatabaseServer(clock=Clock(now=100))
    db.create_sbspace("spc")
    register_grtree_blade(db)
    net = NetServer(
        db, workers=8, queue_depth=64, lock_timeout=LOCK_TIMEOUT
    ).start()
    with ReproClient(net.host, net.port).connect() as setup:
        setup.execute("CREATE TABLE counters (k INTEGER, val INTEGER)")
        setup.execute("CREATE TABLE journal (k INTEGER, seq INTEGER)")
        for key in range(max(CLIENT_COUNTS)):
            setup.execute(f"INSERT INTO counters VALUES ({key}, 0)")
    return db, net


def run_client(net, client_key, ops, latencies, failures):
    """The scan+update workload for one client, all on its own key."""
    try:
        with ReproClient(net.host, net.port, read_timeout=30.0) as client:
            for i in range(ops):
                start = time.perf_counter()
                if i % SCAN_EVERY == 0:
                    client.execute("SELECT * FROM counters")
                client.execute(
                    f"UPDATE counters SET val = {i + 1} "
                    f"WHERE k = {client_key}"
                )
                client.execute(
                    f"INSERT INTO journal VALUES ({client_key}, {i})"
                )
                latencies.append(time.perf_counter() - start)
                time.sleep(THINK_SECONDS)
    except Exception as exc:  # pragma: no cover
        failures.append((client_key, exc))


def drive(net, clients):
    latencies = []
    failures = []
    threads = [
        threading.Thread(
            target=run_client,
            args=(net, key, OPS_PER_CLIENT, latencies, failures),
        )
        for key in range(clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    wall = time.perf_counter() - start
    assert not any(thread.is_alive() for thread in threads), (
        f"{clients}-client run hung"
    )
    assert failures == [], f"client workers failed: {failures!r}"
    ordered = sorted(latencies)
    return {
        "clients": clients,
        "ops": clients * OPS_PER_CLIENT,
        "wall_seconds": wall,
        "throughput_ops_per_s": clients * OPS_PER_CLIENT / wall,
        "latency_p50_ms": 1000 * ordered[len(ordered) // 2],
        "latency_p99_ms": 1000 * ordered[min(
            len(ordered) - 1, int(len(ordered) * 0.99)
        )],
    }


def verify_no_lost_updates(net, max_clients):
    """Disjoint keys: every insert landed exactly once, every counter
    holds the last value its owner wrote."""
    with ReproClient(net.host, net.port).connect() as checker:
        rows = checker.execute("SELECT * FROM journal")
        counters = checker.execute("SELECT * FROM counters")
    seen = [(row["k"], row["seq"]) for row in rows]
    expected = {
        (key, seq)
        for clients in CLIENT_COUNTS
        for key in range(clients)
        for seq in range(OPS_PER_CLIENT)
    }
    # A key used in R of the runs journals each seq exactly R times.
    multiplicity = Counter(seen)
    for key, seq in expected:
        runs_touching = sum(1 for c in CLIENT_COUNTS if key < c)
        assert multiplicity[(key, seq)] == runs_touching, (
            f"journal entry ({key}, {seq}) appeared "
            f"{multiplicity[(key, seq)]} times, wanted {runs_touching}"
        )
    assert len(seen) == sum(
        c * OPS_PER_CLIENT for c in CLIENT_COUNTS
    ), "journal row count disagrees with operations issued"
    final = {row["k"]: row["val"] for row in counters}
    for key in range(max_clients):
        assert final[key] == OPS_PER_CLIENT, (
            f"counter {key} lost updates: {final[key]} != {OPS_PER_CLIENT}"
        )


def measure_killed_client(db, net):
    """A client dies holding an index X lock; a waiter must get through
    within the lock-acquire timeout."""
    day = format_chronon
    with ReproClient(net.host, net.port).connect() as setup:
        setup.execute("CREATE TABLE emp (name LVARCHAR, te GRT_TimeExtent_t)")
        setup.execute("CREATE INDEX e_te ON emp(te) USING grtree_am IN spc")
    extent = f"'{day(100)}, UC, {day(95)}, NOW'"
    holder = ReproClient(net.host, net.port).connect()
    holder.execute("BEGIN WORK")
    holder.execute(f"INSERT INTO emp VALUES ('holder', {extent})")
    assert db.locks.locked_resources > 0

    blocked_for = []

    def waiter():
        with ReproClient(net.host, net.port, read_timeout=30.0) as client:
            start = time.perf_counter()
            client.execute(f"INSERT INTO emp VALUES ('waiter', {extent})")
            blocked_for.append(time.perf_counter() - start)

    thread = threading.Thread(target=waiter)
    thread.start()
    time.sleep(0.1)
    holder._sock.close()  # die without COMMIT/ROLLBACK/QUIT
    thread.join(timeout=LOCK_TIMEOUT + 10)
    assert blocked_for, "waiter never completed after the holder died"
    assert blocked_for[0] <= LOCK_TIMEOUT + 1.0, (
        f"waiter blocked {blocked_for[0]:.2f}s, past the "
        f"{LOCK_TIMEOUT}s lock timeout"
    )
    deadline = time.monotonic() + 5
    while db.locks.locked_resources and time.monotonic() < deadline:
        time.sleep(0.01)
    assert db.locks.locked_resources == 0, "killed client leaked locks"
    return {
        "lock_timeout_seconds": LOCK_TIMEOUT,
        "waiter_blocked_seconds": blocked_for[0],
        "locks_after_disconnect": db.locks.locked_resources,
    }


def test_concurrent_serving_throughput(write_artifact, append_bench):
    db, net = build_served()
    try:
        runs = {}
        for clients in CLIENT_COUNTS:
            runs[clients] = drive(net, clients)
        verify_no_lost_updates(net, max_clients=max(CLIENT_COUNTS))
        lock_results = measure_killed_client(db, net)
        scaling_4 = (
            runs[4]["throughput_ops_per_s"] / runs[1]["throughput_ops_per_s"]
        )
        scaling_8 = (
            runs[8]["throughput_ops_per_s"] / runs[1]["throughput_ops_per_s"]
        )
        snapshot = db.obs.metrics.snapshot()
        payload = {
            "benchmark": "net_concurrency",
            "ops_per_client": OPS_PER_CLIENT,
            "runs": {str(c): runs[c] for c in CLIENT_COUNTS},
            "scaling_4_vs_1": scaling_4,
            "scaling_8_vs_1": scaling_8,
            "scaling_floor": SCALING_FLOOR,
            "killed_client": lock_results,
            "server": {
                "busy_rejections": snapshot.get("net.busy_rejections", 0),
                "aborted_on_disconnect": snapshot.get(
                    "net.aborted_on_disconnect", 0
                ),
                "statements": snapshot.get("net.statements", 0),
            },
        }
        append_bench("BENCH_net_concurrency.json", payload)
        lines = ["Perf concurrency: wire clients vs aggregate throughput"]
        for clients in CLIENT_COUNTS:
            r = runs[clients]
            lines.append(
                f"  {clients} client(s): "
                f"{r['throughput_ops_per_s']:8.1f} ops/s   "
                f"p50 {r['latency_p50_ms']:6.2f} ms   "
                f"p99 {r['latency_p99_ms']:6.2f} ms"
            )
        lines.append(
            f"  scaling: 4 clients {scaling_4:.2f}x, 8 clients "
            f"{scaling_8:.2f}x vs single (floor {SCALING_FLOOR}x at 4)"
        )
        lines.append(
            "  killed client: waiter unblocked in "
            f"{lock_results['waiter_blocked_seconds']:.2f}s "
            f"(timeout {LOCK_TIMEOUT}s), locks leaked: "
            f"{lock_results['locks_after_disconnect']}"
        )
        write_artifact("perf_net_concurrency.txt", "\n".join(lines) + "\n")
        assert scaling_4 >= SCALING_FLOOR, (
            f"4-client scaling {scaling_4:.2f}x is below the "
            f"{SCALING_FLOOR}x floor"
        )
    finally:
        net.shutdown()
