"""Table 4: implementation tasks, their complexity, and lines of code.

The paper reports the effort of each implementation task.  The
reproduction maps every task to the module(s) that implement it and
counts the non-blank, non-comment source lines, printing paper-vs-
measured side by side.  Absolute numbers differ (C vs Python, and the
reproduction implements the substrate too); the *shape* assertion is the
paper's: writing the purpose functions dwarfs the opaque-type work, and
BLOB manipulation exceeds qualification-descriptor handling.
"""

import pathlib

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: Task -> (paper complexity, paper LOC or None, our source files).
TASKS = [
    ("Adapting the existing code to the DataBlade coding guidelines.",
     "low", None, ["datablade/blade.py::adapting"]),
    ("Defining the structure of the opaque type.",
     "average", None, ["datablade/time_extent.py::structure"]),
    ("Including UC and NOW handling in opaque-type support functions.",
     "low", 30, ["datablade/time_extent.py"]),
    ("Writing operations on the opaque type.",
     "low", 30, ["datablade/strategies.py", "datablade/supports.py"]),
    ("Designing the operator class framework.",
     "high", None, ["server/opclass.py"]),
    ("Writing access method purpose functions.",
     "high", 1020, ["datablade/blade.py"]),
    ("Writing BLOB manipulation functions.",
     "average", 280, ["datablade/blob.py"]),
    ("Writing functions manipulating the qualification descriptor.",
     "average", 120, ["datablade/qualification.py"]),
]


def count_loc(relative: str) -> int:
    """Non-blank, non-comment, non-docstring-only source lines."""
    path = SRC / relative.split("::")[0]
    in_docstring = False
    count = 0
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if in_docstring:
            if line.endswith('"""') or line.endswith("'''"):
                in_docstring = False
            continue
        if line.startswith(('"""', "'''")):
            if not (len(line) > 3 and line.endswith(('"""', "'''"))):
                in_docstring = True
            continue
        count += 1
    return count


def measure():
    rows = []
    for task, complexity, paper_loc, files in TASKS:
        measured = sum(count_loc(f) for f in {f.split("::")[0] for f in files})
        rows.append((task, complexity, paper_loc, measured))
    return rows


def test_table4_loc(benchmark, write_artifact):
    rows = benchmark(measure)

    by_task = {task: measured for task, _, _, measured in rows}
    purpose = by_task["Writing access method purpose functions."]
    blob = by_task["Writing BLOB manipulation functions."]
    qual = by_task["Writing functions manipulating the qualification descriptor."]
    uc_now = by_task["Including UC and NOW handling in opaque-type support functions."]
    # The paper's shape: purpose functions >> BLOB layer > qualification
    # handling > UC/NOW handling.
    assert purpose > blob
    assert blob > qual
    assert purpose > 5 * qual

    lines = [
        "Table 4 reproduction: tasks, complexity, and lines of code",
        "",
        f"{'Task':62s} {'cplx':8s} {'paper':>6s} {'ours':>6s}",
        "-" * 86,
    ]
    for task, complexity, paper_loc, measured in rows:
        paper = "-" if paper_loc is None else str(paper_loc)
        lines.append(f"{task:62s} {complexity:8s} {paper:>6s} {measured:>6d}")
    lines += [
        "",
        "Note: paper LOC is C against the real DataBlade API; ours is",
        "Python and includes docstring-free logic only.  The ordering of",
        "task sizes (purpose functions dominating) is the reproduced claim.",
    ]
    write_artifact("table4_loc.txt", "\n".join(lines) + "\n")
