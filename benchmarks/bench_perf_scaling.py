"""Perf-7: scaling -- query I/O as the dataset grows.

Sweeps the history length at a fixed 70 % now-relative fraction.
Expected shape: the sequential scan grows linearly with the data, the
GR-tree's search I/O grows sublinearly (logarithmic descent plus a
selectivity-proportional leaf count), and the GR-tree's advantage over
the max-timestamp R*-tree persists at every size.
"""

import random

import pytest

from _perf import build_setup, measure_query_io
from repro.temporal.extent import TimeExtent

SIZES = [400, 1200, 3600]


def selective_queries(setup, count=15):
    """Windows *above* the ``vt = tt`` diagonal: facts recorded before
    they become true.  Only fixed-future-validity rectangles can match,
    so the result size stays small as the history grows -- the right
    workload for a scaling claim.  Stair-shaped GR-tree bounds prune
    these regions outright; max-timestamp rectangles cannot.
    """
    rng = random.Random(777)
    now = setup.clock.now
    queries = []
    for _ in range(count):
        tt0 = rng.randint(100, max(101, now - 10))
        vt0 = tt0 + rng.randint(25, 70)
        queries.append(TimeExtent(tt0, tt0 + 5, vt0, vt0 + 5))
    return queries


@pytest.fixture(scope="module")
def series():
    rows = {}
    for steps in SIZES:
        setup = build_setup(steps, now_relative_fraction=0.7, seed=202)
        queries = selective_queries(setup)
        rows[steps] = (setup, measure_query_io(setup, queries))
    return rows


@pytest.mark.parametrize("steps", SIZES)
def test_perf7_point_in_sweep(series, benchmark, steps, write_artifact):
    setup, io = series[steps]

    queries = selective_queries(setup, count=5)

    def run_some():
        for query in queries:
            setup.grtree.search_all(query)

    benchmark.pedantic(run_some, rounds=3, iterations=1)

    assert io["grtree"] < io["seqscan"]
    assert io["grtree"] < io["rstar_max"]
    write_artifact(
        f"perf7_scaling_{steps}.txt",
        f"Perf-7 (steps={steps}, entries="
        f"{len(setup.workload.all_extents())}):\n"
        f"  GR-tree {io['grtree']:8.1f}  R*-max {io['rstar_max']:8.1f}  "
        f"seqscan {io['seqscan']:8.1f}\n",
    )


def test_perf7_sublinear_growth(series, benchmark, write_artifact):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    small = series[SIZES[0]][1]
    large = series[SIZES[-1]][1]
    data_growth = SIZES[-1] / SIZES[0]
    # Seqscan grows with the data; the GR-tree grows clearly slower.
    assert large["seqscan"] / small["seqscan"] > data_growth * 0.6
    assert (
        large["grtree"] / max(small["grtree"], 1e-9)
        < large["seqscan"] / small["seqscan"]
    )
    lines = ["Perf-7 summary: avg search I/O per query"]
    for steps in SIZES:
        io = series[steps][1]
        lines.append(
            f"  steps={steps:5d}: GR-tree {io['grtree']:7.1f}  "
            f"R*-max {io['rstar_max']:7.1f}  seqscan {io['seqscan']:7.1f}"
        )
    write_artifact("perf7_summary.txt", "\n".join(lines) + "\n")
