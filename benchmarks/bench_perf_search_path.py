"""Perf search-path: specialized + vectorized kernels on a large tree.

The read-path benchmark gates the *combined* cache + specialization win
on the small Perf-1 workload; this one isolates the specialization layer
itself, at scale, on both hot paths:

* **warm search** -- a 50k-entry bulk-loaded GR-tree, fully node-cached,
  queried with window queries.  The same tree is timed with its
  ``spec`` bundle attached and detached in interleaved rounds, so the
  only difference is compiled-kernel batch evaluation vs the paper's
  literal per-entry purpose-function sequence.  Gate:
  ``SPEC_SEARCH_FLOOR`` (>= 2x when numpy is available; the pure-Python
  fallback must merely not regress).
* **insert path** -- two same-seed trees grown side by side, one
  specialized and one generic.  The vectorized R* penalties must produce
  *byte-identical* pages (asserted) and must not be slower than the
  generic loop beyond noise.

Timing follows the interleaved-round methodology of
``bench_perf_obs_overhead`` (GC off, median of per-round ratios).
Results append to ``benchmarks/out/BENCH_search_path.json`` -- a
history, not a snapshot -- and CI fails when a gate fails, because the
gate is an assertion in this test.
"""

import gc
import statistics
import time

from repro.grtree.bulk import bulk_load
from repro.grtree.node import GRNodeStore
from repro.grtree.specialize import SpecializedOps, numpy_available
from repro.grtree.tree import GRTree
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore
from repro.temporal.chronon import Clock
from repro.workloads import BitemporalWorkload, WorkloadConfig

ENTRIES = 50_000
PAGE_SIZE = 4096          # ~90-entry nodes: batch evaluation territory
QUERIES = 40
ROUNDS = 9
SEED = 404

#: CI gate: warm specialized search throughput vs the generic path on
#: the same tree.  Applied only when numpy is available; the fallback
#: configuration must stay within noise of generic (NO_REGRESSION).
SPEC_SEARCH_FLOOR = 2.0
NO_REGRESSION = 0.9

INSERT_STEPS = 1_500
INSERT_ROUNDS = 5


def build_big_tree():
    """Bulk-load a 50k-entry tree and cache every node, so the timed
    phase touches no I/O and no deserialization -- pure qualification."""
    clock = Clock(now=100)
    workload = BitemporalWorkload(
        clock, WorkloadConfig(seed=SEED, now_relative_fraction=0.5)
    )
    items = []
    for rowid in range(ENTRIES):
        items.append((workload.make_extent(), rowid))
        if rowid % 50 == 49:
            clock.advance(1)
    pool = BufferPool(InMemoryPageStore(page_size=PAGE_SIZE), capacity=4096)
    store = GRNodeStore(pool, node_cache_size=8192)
    tree = bulk_load(store, clock, items)
    queries = [workload.window_query(40, 40) for _ in range(QUERIES)]
    return tree, items, queries


def query_batch(tree, queries) -> float:
    start = time.perf_counter()
    for query in queries:
        tree.search_all(query)
    return time.perf_counter() - start


def measure_search() -> dict:
    tree, items, queries = build_big_tree()
    spec = SpecializedOps()

    # Correctness before speed: identical result sets with the bundle
    # attached and detached, both matching the linear-scan oracle.
    tree.spec = None
    generic_answers = [
        sorted(r for r, _ in tree.search_all(q)) for q in queries
    ]
    tree.spec = spec
    spec_answers = [
        sorted(r for r, _ in tree.search_all(q)) for q in queries
    ]
    assert spec_answers == generic_answers, "specialization changed answers"
    q_region = queries[0].region(tree.now)
    oracle = sorted(
        rowid
        for extent, rowid in items
        if extent.region(tree.now).overlaps(q_region)
    )
    assert generic_answers[0] == oracle, "tree disagrees with the oracle"

    times = {"generic": [], "spec": []}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for mode in ("generic", "spec"):  # warm both paths, untimed
            tree.spec = spec if mode == "spec" else None
            query_batch(tree, queries)
        for round_no in range(ROUNDS):
            order = ["generic", "spec"]
            if round_no % 2:
                order.reverse()
            for mode in order:
                tree.spec = spec if mode == "spec" else None
                times[mode].append(query_batch(tree, queries))
            gc.collect()
    finally:
        tree.spec = spec
        if gc_was_enabled:
            gc.enable()

    speedup = statistics.median(
        g / s for g, s in zip(times["generic"], times["spec"])
    )
    stats = tree.stats()
    return {
        "entries": ENTRIES,
        "page_size": PAGE_SIZE,
        "node_capacity": tree.max_entries,
        "height": stats["height"],
        "nodes": stats["nodes"],
        "queries_per_batch": QUERIES,
        "rounds": ROUNDS,
        "seed": SEED,
        "batch_seconds_generic_best": min(times["generic"]),
        "batch_seconds_specialized_best": min(times["spec"]),
        "batch_seconds_generic_median": statistics.median(times["generic"]),
        "batch_seconds_specialized_median": statistics.median(times["spec"]),
        "warm_search_speedup": speedup,
        "specializer_stats": spec.stats.to_dict(),
        "numpy_available": numpy_available(),
        "floor": SPEC_SEARCH_FLOOR if numpy_available() else NO_REGRESSION,
    }


def grow_tree(spec) -> tuple:
    clock = Clock(now=100)
    pool = BufferPool(InMemoryPageStore(page_size=1024), capacity=512)
    store = GRNodeStore(pool, node_cache_size=512)
    tree = GRTree.create(store, clock, time_horizon=20, spec=spec)
    workload = BitemporalWorkload(
        clock,
        WorkloadConfig(
            seed=SEED + 1,
            now_relative_fraction=0.5,
            delete_fraction=0.1,
            update_fraction=0.1,
        ),
    )
    return tree, pool, workload


def measure_insert() -> dict:
    """Grow specialized and generic trees with the same seed; assert
    byte-identical pages, compare wall-clock."""
    times = {"generic": [], "spec": []}
    pages = {}
    for mode in ("generic", "spec"):
        spec = SpecializedOps() if mode == "spec" else None
        round_times = []
        for _ in range(INSERT_ROUNDS):
            tree, pool, workload = grow_tree(spec)
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                start = time.perf_counter()
                workload.run(tree, INSERT_STEPS)
                round_times.append(time.perf_counter() - start)
            finally:
                if gc_was_enabled:
                    gc.enable()
                gc.collect()
        times[mode] = round_times
        pages[mode] = {
            node.page_id: pool.read(node.page_id)
            for node in tree.iter_nodes()
        }
    assert pages["generic"] == pages["spec"], (
        "specialized insert path diverged from the generic tree bytes"
    )
    ratio = statistics.median(
        g / s for g, s in zip(times["generic"], times["spec"])
    )
    return {
        "steps": INSERT_STEPS,
        "rounds": INSERT_ROUNDS,
        "build_seconds_generic_median": statistics.median(times["generic"]),
        "build_seconds_specialized_median": statistics.median(times["spec"]),
        "insert_speedup": ratio,
        "pages_compared": len(pages["generic"]),
    }


def test_search_path_specialization(write_artifact, append_bench):
    search = measure_search()
    insert = measure_insert()
    payload = {
        "benchmark": "search_path",
        "search": search,
        "insert": insert,
    }
    append_bench("BENCH_search_path.json", payload)
    speedup = search["warm_search_speedup"]
    write_artifact(
        "perf_search_path.txt",
        "Perf search-path: specialized/vectorized kernels vs generic, "
        f"median of {ROUNDS} interleaved rounds\n"
        f"  tree: {ENTRIES} entries, page size {PAGE_SIZE}, "
        f"node capacity {search['node_capacity']}, "
        f"height {search['height']:g}, {search['nodes']:g} nodes\n"
        f"  warm search speedup (spec vs generic): {speedup:.2f}x "
        f"(floor {search['floor']}x)\n"
        f"  insert speedup (spec vs generic):      "
        f"{insert['insert_speedup']:.2f}x "
        f"({insert['pages_compared']} pages byte-identical)\n"
        f"  numpy available: {search['numpy_available']}\n"
        f"  specializer stats: {search['specializer_stats']}\n",
    )
    if search["numpy_available"]:
        assert speedup >= SPEC_SEARCH_FLOOR, (
            f"warm specialized search speedup {speedup:.2f}x is below "
            f"the {SPEC_SEARCH_FLOOR}x floor"
        )
    else:
        assert speedup >= NO_REGRESSION, (
            f"pure-Python fallback regressed the search path: "
            f"{speedup:.2f}x"
        )
    # The specialized insert path must not be slower beyond noise.
    assert insert["insert_speedup"] >= NO_REGRESSION, (
        f"specialized insert path regressed: {insert['insert_speedup']:.2f}x"
    )
