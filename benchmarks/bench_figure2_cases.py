"""Figure 2: the six combinations of time attributes.

Regenerates the figure's table programmatically (which timestamp slots
are variables, and the tt1-vs-vt1 side conditions), verifies every
generated extent classifies into exactly one case, and benchmarks the
classifier over a large generated population.
"""

from repro.temporal.chronon import Clock
from repro.temporal.extent import Case, TimeExtent
from repro.temporal.variables import NOW, UC
from repro.workloads import BitemporalWorkload, WorkloadConfig

PAPER_FIGURE2 = [
    (1, "tt1", "UC", "vt1", "vt2", None),
    (2, "tt1", "tt2", "vt1", "vt2", None),
    (3, "tt1", "UC", "vt1", "NOW", "tt1=vt1"),
    (4, "tt1", "tt2", "vt1", "NOW", "tt1=vt1"),
    (5, "tt1", "UC", "vt1", "NOW", "tt1>vt1"),
    (6, "tt1", "tt2", "vt1", "NOW", "tt1>vt1"),
]


def describe(extent: TimeExtent):
    tt_end = "UC" if extent.tt_end is UC else "tt2"
    vt_end = "NOW" if extent.vt_end is NOW else "vt2"
    condition = None
    if vt_end == "NOW":
        condition = "tt1=vt1" if extent.tt_begin == extent.vt_begin else "tt1>vt1"
    return (extent.case.value, "tt1", tt_end, "vt1", vt_end, condition)


class _Sink:
    def insert(self, extent, rowid):
        pass

    def delete(self, extent, rowid):
        pass


def generate_population(steps=2000):
    clock = Clock(now=100)
    workload = BitemporalWorkload(
        clock, WorkloadConfig(seed=2, delete_fraction=0.2, update_fraction=0.1)
    )
    workload.run(_Sink(), steps)
    return list(workload.all_extents().values())


def test_figure2_case_taxonomy(benchmark, write_artifact):
    population = generate_population()

    def classify_all():
        return [extent.case for extent in population]

    cases = benchmark(classify_all)

    # Every extent falls in exactly one of the six cases, and all six
    # arise from a realistic history.
    assert {case.value for case in cases} == {1, 2, 3, 4, 5, 6}

    # The structural descriptions match the paper's table exactly.
    observed = sorted({describe(extent) for extent in population})
    assert observed == sorted(tuple(row) for row in PAPER_FIGURE2)

    lines = ["        TTbegin  TTend  VTbegin  VTend   condition"]
    for case, ttb, tte, vtb, vte, cond in PAPER_FIGURE2:
        count = sum(1 for c in cases if c.value == case)
        lines.append(
            f"Case {case}  {ttb:8s} {tte:6s} {vtb:8s} {vte:7s} "
            f"{cond or '':8s} (observed {count}x)"
        )
    write_artifact("figure2_cases.txt", "\n".join(lines) + "\n")
