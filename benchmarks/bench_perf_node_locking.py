"""Perf-8: LO-level locking vs developer-built node-level locking (§5.3).

The paper's storage analysis in one number: how many reader/writer
pairs conflict under (a) the sbspace's automatic large-object lock --
one lock for the whole index -- versus (b) the node-level lock-coupling
protocol a developer can build over an OS file.  Expected shape: (a)
conflicts always; (b) conflicts only when the two operations touch the
same subtree.
"""

import pytest

from repro.grtree.locking import (
    LockCouplingScan,
    NodeLockingProtocol,
    locked_insert,
)
from repro.grtree.node import GRNodeStore
from repro.grtree.tree import GRTree
from repro.storage.buffer import BufferPool
from repro.storage.locks import LockConflictError, LockManager, LockMode
from repro.storage.pages import InMemoryPageStore
from repro.temporal.chronon import Clock
from repro.temporal.extent import TimeExtent

#: Disjoint static clusters along transaction time.
CLUSTERS = 8
PER_CLUSTER = 60


def build():
    clock = Clock(now=100)
    tree = GRTree.create(
        GRNodeStore(BufferPool(InMemoryPageStore(page_size=512))), clock
    )
    rowid = 0
    for c in range(CLUSTERS):
        base = 100 + 200 * c
        clock.set(base + 60)
        for i in range(PER_CLUSTER):
            tree.insert(
                TimeExtent(base + (i % 20), base + 50,
                           base + 20 + (i % 20), base + 55),
                rowid,
            )
            rowid += 1
    return clock, tree


def cluster_query(c):
    base = 100 + 200 * c
    return TimeExtent(base, base + 50, base + 20, base + 55)


def cluster_insert_extent(clock, c):
    base = 100 + 200 * c
    return TimeExtent(base + 10, base + 50, base + 25, base + 52)


def count_conflicts(node_level: bool) -> int:
    """For every (reader cluster, writer cluster) pair: reader parks
    mid-scan, writer inserts; count pairs that conflict."""
    clock, tree = build()
    conflicts = 0
    for rc in range(CLUSTERS):
        for wc in range(CLUSTERS):
            locks = LockManager()
            if node_level:
                protocol = NodeLockingProtocol(locks, "gi")
                reader = LockCouplingScan(
                    tree, protocol, 1, cluster_query(rc)
                )
                assert reader.next() is not None
                try:
                    locked_insert(
                        tree, protocol, 2,
                        cluster_insert_extent(clock, wc), rowid=10_000_000,
                    )
                    tree.delete(cluster_insert_extent(clock, wc), 10_000_000)
                except LockConflictError:
                    conflicts += 1
                reader.close()
                protocol.finish(2)
            else:
                # LO-level: one lock for the whole index.
                locks.acquire(1, ("lo", "index"), LockMode.SHARED)
                try:
                    locks.acquire(2, ("lo", "index"), LockMode.EXCLUSIVE)
                except LockConflictError:
                    conflicts += 1
                locks.release_all(1)
                locks.release_all(2)
    return conflicts


@pytest.mark.parametrize("granularity", ["lo", "node"])
def test_perf8_conflict_rates(benchmark, granularity, write_artifact):
    node_level = granularity == "node"
    conflicts = benchmark.pedantic(
        count_conflicts, args=(node_level,), rounds=1, iterations=1
    )
    pairs = CLUSTERS * CLUSTERS
    if node_level:
        # Only same-subtree pairs (at most the diagonal, plus any pairs
        # whose paths genuinely share nodes) may conflict.
        assert conflicts < pairs / 2
    else:
        assert conflicts == pairs  # total serialization
    write_artifact(
        f"perf8_{granularity}.txt",
        f"Perf-8 ({granularity}-level locking): {conflicts}/{pairs} "
        f"reader-writer pairs conflicted\n",
    )
