"""Perf-3: tree "goodness" -- dead space and sibling overlap over time.

The structural claim behind the GR-tree's query advantage (Section 3):
stair-shaped bounds and variable timestamps keep dead space and overlap
small *and stable as time passes*, while the max-timestamp substitution
inflates every growing region to the end of time.  Includes the
time-horizon ablation called out in DESIGN.md.
"""

import pytest

from _perf import PAGE_SIZE, build_setup
from repro.grtree.node import GRNodeStore
from repro.grtree.tree import GRTree
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore
from repro.temporal.chronon import Clock
from repro.temporal.regions import union_area
from repro.workloads import BitemporalWorkload, WorkloadConfig


def rstar_max_quality(setup):
    """Dead space / overlap of the baseline, *clipped to the data space*
    (its rectangles nominally extend to MAX_TIME; what matters is the
    portion that can collide with queries, i.e. up to 'now')."""
    from repro.workloads.baselines import MAX_TIME

    now = setup.clock.now
    dead = 0.0
    overlap = 0.0
    for node in setup.rstar_max.tree.iter_nodes():
        if node.leaf or not node.entries:
            continue
        clipped = []
        for entry in node.entries:
            hi_t = min(entry.rect.hi[0], now)
            hi_v = min(entry.rect.hi[1], now + 100)
            clipped.append((entry.rect.lo[0], hi_t, entry.rect.lo[1], hi_v))
        lo_t = min(c[0] for c in clipped)
        hi_t = max(c[1] for c in clipped)
        lo_v = min(c[2] for c in clipped)
        hi_v = max(c[3] for c in clipped)
        bound_area = max(0.0, hi_t - lo_t) * max(0.0, hi_v - lo_v)
        covered = sum(
            max(0.0, c[1] - c[0]) * max(0.0, c[3] - c[2]) for c in clipped
        )
        dead += max(0.0, bound_area - covered)
        for i, a in enumerate(clipped):
            for b in clipped[i + 1:]:
                w = min(a[1], b[1]) - max(a[0], b[0])
                h = min(a[3], b[3]) - max(a[2], b[2])
                if w > 0 and h > 0:
                    overlap += w * h
    return dead, overlap


def test_perf3_goodness(benchmark, write_artifact):
    setup = build_setup(1200, now_relative_fraction=0.7, seed=51)

    quality = benchmark.pedantic(
        setup.grtree.quality, rounds=3, iterations=1
    )
    base_dead, base_overlap = rstar_max_quality(setup)

    # The GR-tree's internal-node overlap is far below the baseline's
    # (whose growing rectangles all collide out to the end of time).
    assert quality["sibling_overlap"] < base_overlap

    write_artifact(
        "perf3_goodness.txt",
        "Perf-3 tree goodness (clipped to the reachable data space):\n"
        f"  GR-tree : dead space {quality['dead_space']:12.0f}  "
        f"overlap {quality['sibling_overlap']:12.0f}\n"
        f"  R*-max  : dead space {base_dead:12.0f}  "
        f"overlap {base_overlap:12.0f}\n",
    )


def test_perf3_goodness_stays_bounded_over_time(benchmark, write_artifact):
    """Bounds grow with their data: advancing the clock does not degrade
    the GR-tree's structure (no pages are rewritten, Section 3)."""
    setup = build_setup(800, now_relative_fraction=0.8, seed=53)
    q0 = setup.grtree.quality()
    writes_before = setup.grtree_pool.stats.logical_writes
    setup.clock.advance(500)
    q1 = benchmark.pedantic(setup.grtree.quality, rounds=2, iterations=1)
    assert setup.grtree_pool.stats.logical_writes == writes_before
    # Overlap does not explode with time: growing bounds track growing
    # data instead of pre-claiming the whole future.
    data_area_growth = 2 + 500 / max(1, setup.clock.now - 500)
    assert q1["sibling_overlap"] <= (q0["sibling_overlap"] + 1) * 50

    write_artifact(
        "perf3_growth.txt",
        "Perf-3 goodness over time (clock advanced by 500, zero writes):\n"
        f"  at t0   : {q0}\n"
        f"  at t+500: {q1}\n",
    )


@pytest.mark.parametrize("horizon", [0, 20, 100])
def test_perf3_time_horizon_ablation(benchmark, horizon, write_artifact):
    """DESIGN.md ablation: the insertion-time parameter p.

    p = 0 makes placement decisions on today's geometry only; larger p
    charges growing regions for their future, which should not *hurt*
    future-query I/O."""
    clock = Clock(now=100)
    pool = BufferPool(InMemoryPageStore(page_size=PAGE_SIZE), capacity=96)
    tree = GRTree.create(GRNodeStore(pool), clock, time_horizon=horizon)
    workload = BitemporalWorkload(
        clock, WorkloadConfig(seed=55, now_relative_fraction=0.8)
    )
    workload.populate(tree, 800)
    clock.advance(200)
    tree.check()

    queries = [workload.window_query(10, 10) for _ in range(15)]

    def run_queries():
        total = 0
        for query in queries:
            got = sorted(r for r, _ in tree.search_all(query))
            assert got == workload.oracle_overlapping(query)
            total += tree.last_node_accesses
        return total

    accesses = benchmark.pedantic(run_queries, rounds=3, iterations=1)
    write_artifact(
        f"perf3_horizon_{horizon}.txt",
        f"Perf-3 ablation: time horizon p={horizon}: "
        f"{accesses} node accesses over {len(queries)} future queries\n",
    )
