"""Perf hybrid: the head-to-head the hybrid AM exists to win.

One 50k-key table per access path -- the hybrid's hash path, the same
hybrid AM with its hash path disabled (the apples-to-apples B+-tree
descent), the plain B+-tree blade, and the unindexed seqscan baseline --
loaded from the same shuffled key file via LOAD.  Every path must return
identical answers before anything is timed.

Two measurements, two very different denominators:

* **End to end (SQL)**: median per-statement latency of point SELECTs
  through each path.  Parse/plan/span overhead is the same fixed cost
  on every path, so these numbers show what a client sees, not what
  the structures cost.  Reported, not gated (beyond the sanity floor
  that any index beats the seqscan).
* **Access-path layer**: the guarded hash probe (stamp, conflict
  check, ``directory.lookup``, validate) against ``tree.search_equal``
  on the very same open index.  This is the structural claim the
  Griffin design makes, and it is the CI gate:
  ``HASH_SPEEDUP_FLOOR``x or the suite fails.

Timing is interleaved-round (every round times all variants back to
back; the reported figure is the median of per-round ratios), the same
methodology as ``bench_perf_read_path``.  Results append to
``benchmarks/out/BENCH_hybrid.json``.
"""

import os
import random
import statistics
import tempfile
import time

import pytest

from repro.bblade import register_btree_blade
from repro.hblade import register_hybrid_blade
from repro.server import DatabaseServer

N_KEYS = 50_000
ROUNDS = 5
SQL_PROBES = 120      # point SELECTs per round, indexed paths
SEQ_PROBES = 10       # the seqscan walks 50k rows per probe; keep it short
AM_PROBES = 400       # direct structure probes per round
#: The CI gate: guarded hash probes vs B+-tree descent on the same index.
HASH_SPEEDUP_FLOOR = 2.0

#: label -> (table, index name or None)
PATHS = {
    "hash": ("th", "hi"),
    "tree": ("tt", "ti"),      # hybrid AM, hash_path = off
    "btree": ("tb", "bi"),     # the plain B+-tree blade
    "seqscan": ("ts", None),
}


@pytest.fixture(scope="module")
def setup():
    server = DatabaseServer()
    server.create_sbspace("spc")
    blade = register_hybrid_blade(server)
    register_btree_blade(server)
    for table, _ in PATHS.values():
        server.execute(f"CREATE TABLE {table} (k INTEGER, v LVARCHAR)")
    server.execute(
        "CREATE INDEX hi ON th(k) USING hblade_am IN spc "
        "WITH (buffer_capacity = 256)"
    )
    server.execute(
        "CREATE INDEX ti ON tt(k) USING hblade_am IN spc "
        "WITH (buffer_capacity = 256, hash_path = 'off')"
    )
    server.execute(
        "CREATE INDEX bi ON tb(k) USING btree_am IN spc "
        "WITH (buffer_capacity = 256)"
    )
    server.prefer_virtual_index = True

    keys = list(range(N_KEYS))
    random.Random(2026).shuffle(keys)
    fd, path = tempfile.mkstemp(suffix=".unl")
    with os.fdopen(fd, "w") as handle:
        for key in keys:
            handle.write(f"{key}|v{key}\n")
    build_seconds = {}
    try:
        for label, (table, _) in PATHS.items():
            start = time.perf_counter()
            loaded = server.execute(f"LOAD FROM '{path}' INSERT INTO {table}")
            build_seconds[label] = time.perf_counter() - start
            assert loaded == N_KEYS
    finally:
        os.unlink(path)
    return {"server": server, "blade": blade, "build_seconds": build_seconds}


def probe_keys(count: int, salt: int = 0):
    rng = random.Random(4242 + salt)
    return [rng.randrange(N_KEYS) for _ in range(count)]


def test_hybrid_answers_identical(setup):
    """No timing without agreement: every path, same bags of rows."""
    server = setup["server"]
    for key in probe_keys(25):
        bags = {}
        for label, (table, _) in PATHS.items():
            rows = server.execute(f"SELECT k, v FROM {table} WHERE k = {key}")
            bags[label] = sorted((r["k"], r["v"]) for r in rows)
            assert bags[label] == [(key, f"v{key}")]
        assert len(set(map(tuple, bags.values()))) == 1
    lo = N_KEYS // 2
    hi = lo + 40
    expected = None
    for label, (table, _) in PATHS.items():
        rows = server.execute(
            f"SELECT k FROM {table} WHERE k >= {lo} AND k <= {hi}"
        )
        got = sorted(r["k"] for r in rows)
        expected = got if expected is None else expected
        assert got == expected == list(range(lo, hi + 1))
    for index in ("hi", "ti", "bi"):
        server.execute(f"CHECK INDEX {index}")


def sql_batch(server, table, keys) -> float:
    start = time.perf_counter()
    for key in keys:
        server.execute(f"SELECT v FROM {table} WHERE k = {key}")
    return time.perf_counter() - start


def test_hybrid_point_lookup_head_to_head(setup, append_bench, write_artifact):
    server, blade = setup["server"], setup["blade"]

    # -- end to end: per-statement latency through each path ----------
    sql_seconds = {label: [] for label in PATHS}
    for round_number in range(ROUNDS):
        keys = probe_keys(SQL_PROBES, salt=round_number)
        for label, (table, _) in PATHS.items():
            batch = keys[:SEQ_PROBES] if label == "seqscan" else keys
            sql_seconds[label].append(sql_batch(server, table, batch) / len(batch))
    sql_ms = {
        label: statistics.median(samples) * 1000.0
        for label, samples in sql_seconds.items()
    }

    # -- access-path layer: the structures themselves -----------------
    info = server.catalog.get_index("hi")
    am = server.catalog.access_methods.get(info.am_name)
    session = server.system_session
    td = server.executor._descriptor(info, session)
    integer = server.catalog.types.get("INTEGER")
    ratios = []
    hash_us = tree_us = None
    with session.autocommit():
        server.executor.call_purpose(am, "am_open", td)
        try:
            tree = td.user_data["tree"]
            directory = td.user_data["directory"]
            guard = blade._guard("hi")
            encoded = [integer.send(key) for key in probe_keys(AM_PROBES, 99)]
            for key in encoded[:20]:  # agreement before timing
                assert sorted(directory.lookup(key)) == sorted(
                    tree.search_equal(key)
                )
            hash_samples, tree_samples = [], []
            for _ in range(ROUNDS):
                start = time.perf_counter()
                for key in encoded:
                    stamp = guard.read_stamp()
                    if not guard.conflicts(key):
                        directory.lookup(key)
                        guard.validate(key, stamp)
                hash_elapsed = time.perf_counter() - start
                start = time.perf_counter()
                for key in encoded:
                    tree.search_equal(key)
                tree_elapsed = time.perf_counter() - start
                hash_samples.append(hash_elapsed / AM_PROBES)
                tree_samples.append(tree_elapsed / AM_PROBES)
                ratios.append(tree_elapsed / hash_elapsed)
            hash_us = statistics.median(hash_samples) * 1e6
            tree_us = statistics.median(tree_samples) * 1e6
        finally:
            server.executor.call_purpose(am, "am_close", td)
    am_speedup = statistics.median(ratios)

    stats = server.execute("UPDATE STATISTICS FOR INDEX hi")
    payload = {
        "benchmark": "hybrid_point_lookup",
        "keys": N_KEYS,
        "rounds": ROUNDS,
        "build_seconds": {
            label: round(seconds, 3)
            for label, seconds in setup["build_seconds"].items()
        },
        "sql_point_ms": {k: round(v, 4) for k, v in sql_ms.items()},
        "am_hash_probe_us": round(hash_us, 2),
        "am_tree_probe_us": round(tree_us, 2),
        "am_speedup": round(am_speedup, 2),
        "gate_floor": HASH_SPEEDUP_FLOOR,
        "index_stats": stats,
    }
    append_bench("BENCH_hybrid.json", payload)
    write_artifact(
        "perf_hybrid.txt",
        f"Perf hybrid: {N_KEYS} keys, median of {ROUNDS} interleaved "
        "rounds\n"
        f"  SQL point lookup  hash path:   {sql_ms['hash']:.3f} ms\n"
        f"  SQL point lookup  tree path:   {sql_ms['tree']:.3f} ms\n"
        f"  SQL point lookup  btree blade: {sql_ms['btree']:.3f} ms\n"
        f"  SQL point lookup  seqscan:     {sql_ms['seqscan']:.3f} ms\n"
        f"  AM-layer guarded hash probe:   {hash_us:.1f} us\n"
        f"  AM-layer tree descent:         {tree_us:.1f} us\n"
        f"  AM-layer speedup:              {am_speedup:.2f}x "
        f"(floor {HASH_SPEEDUP_FLOOR}x)\n",
    )
    assert am_speedup >= HASH_SPEEDUP_FLOOR, (
        f"hash-path point lookups are only {am_speedup:.2f}x the tree "
        f"path, below the {HASH_SPEEDUP_FLOOR}x floor"
    )
    # Sanity floor, not a race: any index beats walking 50k heap rows.
    assert sql_ms["hash"] < sql_ms["seqscan"]
    assert sql_ms["tree"] < sql_ms["seqscan"]
