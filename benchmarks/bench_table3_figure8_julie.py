"""Table 3 + Figure 8: the Julie record and the separate-interval anomaly.

Reconstructs the Julie tuple, rasterizes its stair-shaped time extent
(Figure 8), and evaluates the paper's query -- "Who worked in the Sales
department during 7/97 according to the knowledge we had during 5/97?",
issued at current time 9/97 -- three ways: the incorrect separate-
interval evaluation, the correct bitemporal function as a sequential-
scan UDR, and the correct evaluation through the GR-tree index.  The
benchmark compares the correct paths.
"""

import pytest

from repro.core import BitemporalDatabase
from repro.temporal.chronon import Granularity, parse_chronon
from repro.temporal.extent import TimeExtent
from repro.temporal.relation import build_empdep
from repro.temporal.variables import NOW, UC


def month(text):
    return parse_chronon(text, Granularity.MONTH)


@pytest.fixture(scope="module")
def julie_db():
    db = BitemporalDatabase(["name", "department"],
                            granularity=Granularity.MONTH)
    db.clock.set(month("3/97"))
    db.insert({"name": "Julie", "department": "Sales"}, vt_begin=month("3/97"))
    db.clock.set(month("8/97"))
    db.delete_where("name", "Julie")
    db.clock.set(month("9/97"))
    return db


def test_table3_figure8_julie(julie_db, benchmark, write_artifact):
    db = julie_db
    rows = db.sql(f"SELECT * FROM {db.TABLE}")
    assert len(rows) == 1
    extent = rows[0]["time_extent"]
    # Table 3: TTbegin 3/97, TTend 7/97, VTbegin 3/97, VTend NOW.
    assert extent == TimeExtent(month("3/97"), month("7/97"),
                                month("3/97"), NOW)

    vt, tt = month("7/97"), month("5/97")

    # (1) Incorrect: intervals considered separately (Section 5.1).
    reference = build_empdep()
    naive = {
        r.values["Employee"]
        for r in reference.timeslice_naive(vt, tt)
        if r.values["Department"] == "Sales"
    }
    assert "Julie" in naive  # the anomaly: Julie wrongly qualifies

    # (2/3) Correct: one bitemporal function over the whole extent.
    def indexed_query():
        return db.timeslice(vt, tt)

    correct = benchmark(indexed_query)
    assert "Julie" not in {r["name"] for r in correct}

    # Figure 8: the stair-shaped region of the Julie record.
    region = extent.region(month("9/97"))
    assert region.stair
    assert not region.contains_point(tt, vt)  # (5/97, 7/97) is outside
    assert region.contains_point(month("6/97"), month("5/97"))

    t0, t1 = month("1/97"), month("12/97")
    lines = ["Figure 8: time extent of the Julie record (# = region)",
             "  (vt axis up, tt axis right; months 1/97..12/97)"]
    for v in reversed(range(t0, t1 + 1)):
        marker = "".join(
            "Q" if (t, v) == (tt, vt) else
            ("#" if region.contains_point(t, v) else ".")
            for t in range(t0, t1 + 1)
        )
        lines.append("  " + marker)
    lines += [
        "",
        "Query (Q): valid 7/97 per 5/97 knowledge, issued at 9/97",
        f"  separate-interval answer (incorrect): {sorted(naive)}",
        f"  bitemporal answer (correct):          "
        f"{sorted(r['name'] for r in correct)}",
    ]
    write_artifact("table3_figure8_julie.txt", "\n".join(lines) + "\n")
