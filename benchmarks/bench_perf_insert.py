"""Perf-2: insertion and update cost across the now-relative sweep.

Measures page I/O per insertion for the GR-tree and the max-timestamp
R*-tree over the same histories, plus the effect of the GR-tree's time
parameter (the time-horizon ablation is Perf-3's sibling in DESIGN.md).
Expected shape: insertion costs are the same order for both trees --
the GR-tree buys its query advantage without a write penalty.
"""

import pytest

from _perf import PAGE_SIZE, build_setup, pages_touched
from repro.grtree.node import GRNodeStore
from repro.grtree.tree import GRTree
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore
from repro.temporal.chronon import Clock
from repro.workloads import BitemporalWorkload, MaxTimestampRTree, WorkloadConfig

STEPS = 1200
FRACTIONS = [0.0, 0.5, 1.0]


def grtree_insert_io(fraction, steps=STEPS, horizon=20):
    clock = Clock(now=100)
    pool = BufferPool(InMemoryPageStore(page_size=PAGE_SIZE), capacity=96)
    tree = GRTree.create(GRNodeStore(pool), clock, time_horizon=horizon)
    workload = BitemporalWorkload(
        clock, WorkloadConfig(seed=7, now_relative_fraction=fraction)
    )
    before = pool.stats.snapshot()
    workload.populate(tree, steps)
    tree.check()
    return pages_touched(pool.stats - before) / steps


def rstar_insert_io(fraction, steps=STEPS):
    clock = Clock(now=100)
    baseline = MaxTimestampRTree(clock, page_size=PAGE_SIZE, buffer_capacity=96)
    workload = BitemporalWorkload(
        clock, WorkloadConfig(seed=7, now_relative_fraction=fraction)
    )
    before = baseline.pool.stats.snapshot()
    workload.populate(baseline, steps)
    return pages_touched(baseline.pool.stats - before) / steps


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_perf2_insert_io(benchmark, fraction, write_artifact):
    grtree_io = grtree_insert_io(fraction)
    rstar_io = rstar_insert_io(fraction)

    def insert_batch():
        grtree_insert_io(fraction, steps=200)

    benchmark.pedantic(insert_batch, rounds=3, iterations=1)

    # Same order of magnitude: no write penalty for the GR-tree.
    assert grtree_io < rstar_io * 3
    assert rstar_io < grtree_io * 3

    write_artifact(
        f"perf2_insert_io_{fraction}.txt",
        f"Perf-2 (now-relative fraction = {fraction}):\n"
        f"  pages touched per insertion: GR-tree {grtree_io:6.2f}, "
        f"R*-max {rstar_io:6.2f}\n",
    )


def test_perf2_deletion_heavy_history(benchmark, write_artifact):
    """Updates and deletions (the EmpDep pattern) keep both trees
    healthy; the GR-tree's condense strategy does not blow up I/O."""
    def run():
        setup = build_setup(
            600, now_relative_fraction=0.6,
            delete_fraction=0.25, update_fraction=0.15, seed=31,
        )
        setup.grtree.check()
        return setup

    setup = benchmark.pedantic(run, rounds=2, iterations=1)
    stats = setup.grtree.stats()
    assert stats["avg_fill"] > 0.3  # condensation keeps nodes filled
    write_artifact(
        "perf2_deletion_heavy.txt",
        f"Perf-2 deletion-heavy history: {stats}\n",
    )
