"""Figure 6: purpose functions called for INSERT and SELECT statements.

Runs both statements against a GR-tree-indexed table with purpose-
function tracing on, asserts the exact call sequences of the figure, and
benchmarks each statement end to end (parser, optimizer, descriptors,
purpose functions, DataBlade, storage).
"""

import itertools

import pytest

from repro.datablade import register_grtree_blade
from repro.server import DatabaseServer
from repro.temporal.chronon import Clock, format_chronon

FIGURE_6A = ["am_open", "am_insert", "am_close"]
FIGURE_6B_PREFIX = ["am_open", "am_beginscan", "am_getnext"]
FIGURE_6B_SUFFIX = ["am_endscan", "am_close"]


def day(chronon):
    return format_chronon(chronon)


@pytest.fixture()
def server():
    server = DatabaseServer(clock=Clock(now=100))
    server.create_sbspace("spc")
    register_grtree_blade(server)
    server.execute("CREATE TABLE t (name LVARCHAR, te GRT_TimeExtent_t)")
    server.execute("CREATE INDEX gi ON t(te) USING grtree_am IN spc")
    server.prefer_virtual_index = True
    for i in range(50):
        server.execute(
            f"INSERT INTO t VALUES ('seed{i}', '{day(100)}, UC, {day(95)}, NOW')"
        )
    return server


def calls(server):
    return [text.split(".", 1)[1] for text in server.trace.texts("am")]


def test_figure6a_insert_sequence(server, benchmark, write_artifact):
    counter = itertools.count()

    def do_insert():
        i = next(counter)
        server.execute(
            f"INSERT INTO t VALUES ('x{i}', '{day(100)}, UC, {day(95)}, NOW')"
        )

    benchmark.pedantic(do_insert, rounds=10, iterations=1)

    server.trace.set_level("am", 1)
    server.execute(
        f"INSERT INTO t VALUES ('traced', '{day(100)}, UC, {day(95)}, NOW')"
    )
    sequence = calls(server)
    assert sequence == FIGURE_6A
    write_artifact(
        "figure6a_insert.txt",
        "Figure 6(a): purpose functions called for INSERT\n"
        + "\n".join(f"  {i + 1}. {c}" for i, c in enumerate(sequence))
        + "\n",
    )


def test_figure6b_select_sequence(server, benchmark, write_artifact):
    query = (
        f"SELECT name FROM t WHERE "
        f"Overlaps(te, '{day(100)}, UC, {day(100)}, NOW')"
    )
    rows = benchmark(server.execute, query)
    assert len(rows) >= 50

    server.trace.set_level("am", 1)
    server.execute(query)
    sequence = calls(server)
    # The optimizer's am_scancost probe precedes the figure's sequence.
    assert sequence[0] == "am_scancost"
    body = sequence[1:]
    assert body[:3] == FIGURE_6B_PREFIX
    assert body[-2:] == FIGURE_6B_SUFFIX
    middle = body[3:-2]
    assert all(c == "am_getnext" for c in middle)
    # One am_getnext per returned row plus the final empty call.
    assert body.count("am_getnext") == len(rows) + 1
    write_artifact(
        "figure6b_select.txt",
        "Figure 6(b): purpose functions called for SELECT\n"
        + "\n".join(f"  {i + 1}. {c}" for i, c in enumerate(sequence))
        + "\n",
    )
