"""Table 2: tasks of access-method purpose functions.

Regenerates the task inventory, then exercises every one of the
fourteen slots through real SQL statements, asserting (via the trace)
that each task's functions actually fire.  The benchmark measures a
full task sweep: create, open/close, scan, insert/delete/update,
scancost, stats, check, drop.
"""

import itertools

import pytest

from repro.datablade import register_grtree_blade
from repro.server import DatabaseServer
from repro.server.access_method import PURPOSE_SLOTS, PURPOSE_TASKS
from repro.temporal.chronon import Clock, format_chronon


def day(chronon):
    return format_chronon(chronon)


def make_server():
    server = DatabaseServer(clock=Clock(now=100))
    server.create_sbspace("spc")
    register_grtree_blade(server)
    server.execute("CREATE TABLE t (name LVARCHAR, te GRT_TimeExtent_t)")
    server.prefer_virtual_index = True
    return server


_ids = itertools.count()


def exercise_all_slots(server):
    """One SQL-level pass that touches every purpose-function slot."""
    n = next(_ids)
    server.execute(f"CREATE INDEX gi{n} ON t(te) USING grtree_am IN spc")
    server.execute(
        f"INSERT INTO t VALUES ('r{n}_0', '{day(100)}, UC, {day(100)}, NOW')"
    )
    for i in range(1, 40):
        server.execute(
            f"INSERT INTO t VALUES ('r{n}_{i}', '{day(100)}, UC, {day(95)}, NOW')"
        )
    q = f"'{day(100)}, UC, {day(100)}, NOW'"
    server.execute(f"SELECT name FROM t WHERE Overlaps(te, {q})")
    server.execute(
        f"UPDATE t SET te = '{day(100)}, UC, {day(94)}, {day(99)}' "
        f"WHERE Equal(te, {q}) AND name = 'r{n}_0'"
    )
    server.execute(f"DELETE FROM t WHERE Overlaps(te, {q})")
    server.execute(f"CHECK INDEX gi{n}")
    server.execute(f"UPDATE STATISTICS FOR INDEX gi{n}")
    server.execute(f"DROP INDEX gi{n}")


def test_table2_purpose_tasks(benchmark, write_artifact):
    server = make_server()
    server.trace.set_level("am", 1)

    benchmark.pedantic(exercise_all_slots, args=(server,), rounds=3,
                       iterations=1)

    fired = {text.split(".", 1)[1] for text in server.trace.texts("am")}
    # grt_rescan fires inside the blade, not via a separate slot here;
    # exercise it directly to complete the inventory.
    missing_before = set(PURPOSE_SLOTS) - fired
    if "am_rescan" in missing_before:
        from repro.server.access_method import ScanDescriptor

        info = None
        server.execute("CREATE INDEX gparity ON t(te) USING grtree_am IN spc")
        info = server.catalog.get_index("gparity")
        am = server.catalog.access_methods.get("grtree_am")
        td = server.executor._descriptor(info, server.system_session)
        with server.system_session.autocommit():
            server.executor.call_purpose(am, "am_open", td)
            from repro.server.access_method import SimpleQualification
            from repro.temporal.extent import TimeExtent
            from repro.temporal.variables import NOW, UC

            qual = SimpleQualification(
                "Overlaps", "te", TimeExtent(100, UC, 100, NOW)
            )
            sd = ScanDescriptor(td, qual)
            server.executor.call_purpose(am, "am_beginscan", sd)
            server.executor.call_purpose(am, "am_rescan", sd)
            server.executor.call_purpose(am, "am_endscan", sd)
            server.executor.call_purpose(am, "am_close", td)
        fired = {text.split(".", 1)[1] for text in server.trace.texts("am")}

    assert fired == set(PURPOSE_SLOTS), f"missing: {set(PURPOSE_SLOTS) - fired}"

    lines = ["Table 2 reproduction: tasks of access method purpose functions",
             ""]
    for task, slots in PURPOSE_TASKS.items():
        status = ", ".join(
            f"{slot}[fired]" if slot in fired else f"{slot}[NOT FIRED]"
            for slot in slots
        )
        lines.append(f"{task}")
        lines.append(f"    {status}")
    write_artifact("table2_purpose_tasks.txt", "\n".join(lines) + "\n")
