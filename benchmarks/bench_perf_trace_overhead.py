"""Perf-Trace: per-statement trace propagation must be (nearly) free.

Every traced statement pays for a 128-bit trace-id mint on the client,
two extra JSON fields on the execute frame, and the trace-context stamp
on the server's root span.  This benchmark drives the same single-client
wire workload twice per round -- a ``tracing=False`` driver (bare
execute frames, the baseline) and a tracing driver -- and gates on the
median *per-round* ratio, so interpreter drift cancels (same protocol
as ``bench_perf_obs_overhead``).  Each measurement runs against its own
freshly-booted server: statements that mutate a shared table would make
whichever variant runs later scan more version history, which reads as
fake tracing overhead.

The CI gate: tracing-enabled wire throughput loses < 5% against the
untraced baseline.  Machine-readable results land in
``benchmarks/out/BENCH_trace_overhead.json`` (uploaded as a CI
artifact).
"""

import gc
import statistics
import time

from repro.net import NetServer, ReproClient
from repro.server import DatabaseServer
from repro.temporal.chronon import Clock

STATEMENTS = 400
ROUNDS = 8
BUDGET = 0.05  # the <5% contract from ISSUE.md


def run_workload(tracing: bool) -> tuple:
    """Boot a fresh server, run STATEMENTS statements, return
    ``(wall_seconds, traced_span_count)``."""
    db = DatabaseServer(clock=Clock(now=100))
    net = NetServer(db, workers=2, queue_depth=32).start()
    try:
        with ReproClient(
            net.host, net.port, read_timeout=30.0, tracing=tracing
        ) as client:
            client.execute("CREATE TABLE kv (k INTEGER, val INTEGER)")
            for key in range(8):
                client.execute(f"INSERT INTO kv VALUES ({key}, 0)")
            start = time.perf_counter()
            for i in range(STATEMENTS):
                if i % 4 == 0:
                    client.execute(
                        f"UPDATE kv SET val = {i} WHERE k = {i % 8}"
                    )
                else:
                    client.execute(f"SELECT val FROM kv WHERE k = {i % 8}")
            elapsed = time.perf_counter() - start
    finally:
        net.shutdown()
    traced = len(
        [r for r in db.obs.spans.select() if r.trace_id is not None]
    )
    return elapsed, traced


def measure() -> dict:
    variants = [("untraced", False), ("traced", True)]
    rounds = {name: [] for name, _ in variants}
    traced_spans = 0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        run_workload(False)  # warm-up, untimed
        for round_no in range(ROUNDS):
            # rotate the order so no variant systematically runs first
            for offset in range(len(variants)):
                name, tracing = variants[(round_no + offset) % len(variants)]
                elapsed, traced = run_workload(tracing)
                rounds[name].append(elapsed)
                if tracing:
                    traced_spans += traced
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    rounds["traced_spans"] = traced_spans
    return rounds


def overhead(rounds: dict) -> float:
    """Median per-round slowdown of tracing vs the bare driver."""
    ratios = [
        traced / base
        for traced, base in zip(rounds["traced"], rounds["untraced"])
    ]
    return statistics.median(ratios) - 1.0


def test_trace_propagation_wire_overhead_under_budget(append_bench):
    rounds = measure()
    cost = overhead(rounds)
    payload = {
        "statements_per_round": STATEMENTS,
        "rounds": ROUNDS,
        "budget": BUDGET,
        "untraced_seconds": rounds["untraced"],
        "traced_seconds": rounds["traced"],
        "median_overhead": cost,
        "spans_with_trace_ids": rounds["traced_spans"],
    }
    append_bench("BENCH_trace_overhead.json", payload)
    # The traced rounds really traced: their statements joined traces.
    assert payload["spans_with_trace_ids"] > 0
    assert cost < BUDGET, (
        f"trace propagation costs {cost:.2%} on the wire statement path "
        f"(budget {BUDGET:.0%})"
    )
