"""Perf read-path: the three cache layers must actually pay rent.

Layer by layer (see ``docs/performance.md``):

* the **node cache** (deserialized ``GRNode`` LRU in ``GRNodeStore``) is
  the tentpole: warm-read query throughput on the Perf-1 workload must
  be at least ``SPEEDUP_FLOOR`` times the cache-off baseline, with
  *identical* ``search_all`` answers and a passing ``check()`` under
  every cache configuration (off, tiny-with-evictions, default);
* the **serialization fast path** (``pack_into``/``iter_unpack`` over a
  reusable scratch page) is timed through the insert workload;
* the **server-side caches** (parsed-statement LRU + the blade's handle
  cache) are timed end to end through repeated SQL statements.

Timing uses the interleaved-round methodology of
``bench_perf_obs_overhead``: every round times all variants back to
back with the GC off, and the reported speedup is the *median of
per-round ratios*, so interpreter drift cancels.  Machine-readable
results land in ``benchmarks/out/BENCH_read_path.json`` (uploaded as a
CI artifact; CI fails if the warm-read gate fails, because it fails
this test).
"""

import gc
import statistics
import time

from _perf import PAGE_SIZE
from repro.datablade import register_grtree_blade
from repro.grtree.node import GRNodeStore
from repro.grtree.specialize import SpecializedOps, numpy_available
from repro.grtree.tree import GRTree
from repro.server import DatabaseServer
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore
from repro.temporal.chronon import Clock
from repro.workloads import BitemporalWorkload, WorkloadConfig

STEPS = 500           # Perf-1-style mixed history
QUERIES = 30          # window queries per timed batch
ROUNDS = 9
SPEEDUP_FLOOR = 1.3   # the CI gate: generic warm reads vs node-cache-off
#: The raised gate: node cache + specialized/vectorized scan kernels vs
#: the cache-off generic baseline.  Only enforced when numpy is present
#: (the pure-Python fallback is gated by SPEEDUP_FLOOR alone).
SPEC_SPEEDUP_FLOOR = 2.0
NODE_CACHE_CONFIGS = (0, 8, 128)  # off / eviction-heavy / default
#: All timed tree-layer variants: the node-cache ladder plus the
#: specialized configuration (default cache + compiled scan kernels).
TREE_CONFIGS = NODE_CACHE_CONFIGS + ("spec",)

SQL_ROUNDS = 5
SQL_STATEMENTS = 60

EXTENT = "'01/01/98, UC, 01/01/98, NOW'"


def build_tree(node_cache_size: int):
    """The Perf-1 mixed workload over a fresh GR-tree; same seed for
    every configuration, so trees and query lists are identical."""
    clock = Clock(now=100)
    pool = BufferPool(InMemoryPageStore(page_size=PAGE_SIZE), capacity=96)
    store = GRNodeStore(pool, node_cache_size=node_cache_size)
    tree = GRTree.create(store, clock, time_horizon=20)
    workload = BitemporalWorkload(
        clock,
        WorkloadConfig(
            seed=101,
            now_relative_fraction=0.5,
            delete_fraction=0.1,
            update_fraction=0.1,
        ),
    )
    start = time.perf_counter()
    workload.run(tree, STEPS)
    build_seconds = time.perf_counter() - start
    queries = [workload.window_query(10, 10) for _ in range(QUERIES)]
    return tree, store, workload, queries, build_seconds


def query_batch(tree, queries) -> float:
    start = time.perf_counter()
    for query in queries:
        tree.search_all(query)
    return time.perf_counter() - start


def measure_tree_layer() -> dict:
    """Build one tree per cache config, verify equivalence, time warm
    query batches in interleaved rounds."""
    setups = {}
    for config in TREE_CONFIGS:
        size = 128 if config == "spec" else config
        tree, store, workload, queries, build_seconds = build_tree(size)
        if config == "spec":
            # Same tree bytes, same node cache; only the scan path is
            # specialized (compiled + vectorized kernels).
            tree.spec = SpecializedOps()
        setups[config] = {
            "tree": tree,
            "store": store,
            "queries": queries,
            "build_seconds": build_seconds,
        }

    # Correctness first: identical answers under every configuration,
    # matching the workload oracle, and a consistent tree.
    reference = None
    for config, setup in setups.items():
        tree, queries = setup["tree"], setup["queries"]
        answers = [sorted(r for r, _ in tree.search_all(q)) for q in queries]
        if reference is None:
            reference = answers
        assert answers == reference, (
            f"configuration {config!r} changed query answers"
        )
        tree.check()

    rounds = {config: [] for config in TREE_CONFIGS}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for setup in setups.values():  # warm every cache, untimed
            query_batch(setup["tree"], setup["queries"])
        for round_no in range(ROUNDS):
            order = list(TREE_CONFIGS)
            rotation = round_no % len(order)
            order = order[rotation:] + order[:rotation]
            for config in order:
                setup = setups[config]
                rounds[config].append(
                    query_batch(setup["tree"], setup["queries"])
                )
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()

    def median_speedup(config) -> float:
        return statistics.median(
            base / timed for base, timed in zip(rounds[0], rounds[config])
        )

    default_size = NODE_CACHE_CONFIGS[-1]
    cache_stats = setups[default_size]["store"].cache_stats.to_dict()
    spec_stats = setups["spec"]["tree"].spec.stats.to_dict()
    return {
        "workload": {
            "steps": STEPS,
            "queries_per_batch": QUERIES,
            "rounds": ROUNDS,
            "page_size": PAGE_SIZE,
            "seed": 101,
        },
        "configs": {
            str(config): {
                "build_seconds": setups[config]["build_seconds"],
                "batch_seconds_best": min(rounds[config]),
                "batch_seconds_median": statistics.median(rounds[config]),
            }
            for config in TREE_CONFIGS
        },
        "warm_read_speedup": median_speedup(default_size),
        "warm_read_speedup_small_cache": median_speedup(8),
        "warm_read_speedup_specialized": median_speedup("spec"),
        "numpy_available": numpy_available(),
        "node_cache_stats": cache_stats,
        "specializer_stats": spec_stats,
        "speedup_floor": SPEEDUP_FLOOR,
        "spec_speedup_floor": SPEC_SPEEDUP_FLOOR,
    }


def build_server(cached: bool) -> DatabaseServer:
    server = DatabaseServer(
        statement_cache_size=64 if cached else 0,
        node_cache_size=128 if cached else 0,
    )
    server.create_sbspace("spc")
    register_grtree_blade(server, handle_cache=cached)
    server.prefer_virtual_index = True
    server.obs.disable()  # measure the caches, not the instrumentation
    server.execute("CREATE TABLE e (n LVARCHAR, te GRT_TimeExtent_t)")
    server.execute("CREATE INDEX gi ON e(te) USING grtree_am IN spc")
    server.clock.set_text("01/01/98")
    for i in range(50):
        server.execute(f"INSERT INTO e VALUES ('r{i}', {EXTENT})")
    return server


def statement_batch(server) -> float:
    sql = f"SELECT n FROM e WHERE Overlaps(te, {EXTENT})"
    start = time.perf_counter()
    for _ in range(SQL_STATEMENTS):
        rows = server.execute(sql)
    elapsed = time.perf_counter() - start
    assert len(rows) == 50
    return elapsed


def measure_server_layer() -> dict:
    """Repeated identical SELECTs: all server caches on vs all off."""
    servers = {"cached": build_server(True), "uncached": build_server(False)}
    ratios = []
    times = {name: [] for name in servers}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for server in servers.values():
            statement_batch(server)  # warm-up, untimed
        for round_no in range(SQL_ROUNDS):
            order = ["cached", "uncached"]
            if round_no % 2:
                order.reverse()
            round_times = {}
            for name in order:
                round_times[name] = statement_batch(servers[name])
            for name, elapsed in round_times.items():
                times[name].append(elapsed)
            ratios.append(round_times["uncached"] / round_times["cached"])
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "statements_per_batch": SQL_STATEMENTS,
        "rounds": SQL_ROUNDS,
        "batch_seconds_cached_best": min(times["cached"]),
        "batch_seconds_uncached_best": min(times["uncached"]),
        "statement_speedup": statistics.median(ratios),
    }


def test_read_path_speedups(write_artifact, append_bench):
    tree_results = measure_tree_layer()
    server_results = measure_server_layer()
    payload = {
        "benchmark": "read_path",
        "tree_layer": tree_results,
        "server_layer": server_results,
    }
    append_bench("BENCH_read_path.json", payload)
    speedup = tree_results["warm_read_speedup"]
    spec_speedup = tree_results["warm_read_speedup_specialized"]
    stmt_speedup = server_results["statement_speedup"]
    write_artifact(
        "perf_read_path.txt",
        "Perf read-path: cache layers + specialization, median of "
        f"{ROUNDS} interleaved rounds\n"
        f"  warm-read speedup (node cache 128 vs off): {speedup:.2f}x "
        f"(floor {SPEEDUP_FLOOR}x)\n"
        "  warm-read speedup (node cache 8 vs off):   "
        f"{tree_results['warm_read_speedup_small_cache']:.2f}x\n"
        "  warm-read speedup (cache + specialized):   "
        f"{spec_speedup:.2f}x "
        f"(floor {SPEC_SPEEDUP_FLOOR}x when numpy is available)\n"
        f"  numpy available: {tree_results['numpy_available']}\n"
        f"  statement speedup (all server caches):     {stmt_speedup:.2f}x\n"
        f"  node cache stats: {tree_results['node_cache_stats']}\n"
        f"  specializer stats: {tree_results['specializer_stats']}\n",
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm-read speedup {speedup:.2f}x is below the "
        f"{SPEEDUP_FLOOR}x floor"
    )
    if tree_results["numpy_available"]:
        assert spec_speedup >= SPEC_SPEEDUP_FLOOR, (
            f"specialized warm-read speedup {spec_speedup:.2f}x is below "
            f"the {SPEC_SPEEDUP_FLOOR}x floor"
        )
    else:
        # Pure-Python fallback: specialization must not cost anything.
        assert spec_speedup >= SPEEDUP_FLOOR * 0.9
    # The server-side caches must at least not slow statements down.
    assert stmt_speedup > 0.95
