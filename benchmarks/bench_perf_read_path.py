"""Perf read-path: the three cache layers must actually pay rent.

Layer by layer (see ``docs/performance.md``):

* the **node cache** (deserialized ``GRNode`` LRU in ``GRNodeStore``) is
  the tentpole: warm-read query throughput on the Perf-1 workload must
  be at least ``SPEEDUP_FLOOR`` times the cache-off baseline, with
  *identical* ``search_all`` answers and a passing ``check()`` under
  every cache configuration (off, tiny-with-evictions, default);
* the **serialization fast path** (``pack_into``/``iter_unpack`` over a
  reusable scratch page) is timed through the insert workload;
* the **server-side caches** (parsed-statement LRU + the blade's handle
  cache) are timed end to end through repeated SQL statements.

Timing uses the interleaved-round methodology of
``bench_perf_obs_overhead``: every round times all variants back to
back with the GC off, and the reported speedup is the *median of
per-round ratios*, so interpreter drift cancels.  Machine-readable
results land in ``benchmarks/out/BENCH_read_path.json`` (uploaded as a
CI artifact; CI fails if the warm-read gate fails, because it fails
this test).
"""

import gc
import json
import statistics
import time

from _perf import PAGE_SIZE
from repro.datablade import register_grtree_blade
from repro.grtree.node import GRNodeStore
from repro.grtree.tree import GRTree
from repro.server import DatabaseServer
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore
from repro.temporal.chronon import Clock
from repro.workloads import BitemporalWorkload, WorkloadConfig

STEPS = 500           # Perf-1-style mixed history
QUERIES = 30          # window queries per timed batch
ROUNDS = 9
SPEEDUP_FLOOR = 1.3   # the CI gate: warm reads vs node-cache-off
NODE_CACHE_CONFIGS = (0, 8, 128)  # off / eviction-heavy / default

SQL_ROUNDS = 5
SQL_STATEMENTS = 60

EXTENT = "'01/01/98, UC, 01/01/98, NOW'"


def build_tree(node_cache_size: int):
    """The Perf-1 mixed workload over a fresh GR-tree; same seed for
    every configuration, so trees and query lists are identical."""
    clock = Clock(now=100)
    pool = BufferPool(InMemoryPageStore(page_size=PAGE_SIZE), capacity=96)
    store = GRNodeStore(pool, node_cache_size=node_cache_size)
    tree = GRTree.create(store, clock, time_horizon=20)
    workload = BitemporalWorkload(
        clock,
        WorkloadConfig(
            seed=101,
            now_relative_fraction=0.5,
            delete_fraction=0.1,
            update_fraction=0.1,
        ),
    )
    start = time.perf_counter()
    workload.run(tree, STEPS)
    build_seconds = time.perf_counter() - start
    queries = [workload.window_query(10, 10) for _ in range(QUERIES)]
    return tree, store, workload, queries, build_seconds


def query_batch(tree, queries) -> float:
    start = time.perf_counter()
    for query in queries:
        tree.search_all(query)
    return time.perf_counter() - start


def measure_tree_layer() -> dict:
    """Build one tree per cache config, verify equivalence, time warm
    query batches in interleaved rounds."""
    setups = {}
    for size in NODE_CACHE_CONFIGS:
        tree, store, workload, queries, build_seconds = build_tree(size)
        setups[size] = {
            "tree": tree,
            "store": store,
            "queries": queries,
            "build_seconds": build_seconds,
        }

    # Correctness first: identical answers under every configuration,
    # matching the workload oracle, and a consistent tree.
    reference = None
    for size, setup in setups.items():
        tree, queries = setup["tree"], setup["queries"]
        answers = [sorted(r for r, _ in tree.search_all(q)) for q in queries]
        if reference is None:
            reference = answers
        assert answers == reference, (
            f"node_cache_size={size} changed query answers"
        )
        tree.check()

    rounds = {size: [] for size in NODE_CACHE_CONFIGS}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for size, setup in setups.items():  # warm every cache, untimed
            query_batch(setup["tree"], setup["queries"])
        for round_no in range(ROUNDS):
            order = list(NODE_CACHE_CONFIGS)
            rotation = round_no % len(order)
            order = order[rotation:] + order[:rotation]
            for size in order:
                setup = setups[size]
                rounds[size].append(query_batch(setup["tree"], setup["queries"]))
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()

    def median_speedup(size: int) -> float:
        return statistics.median(
            base / with_cache
            for base, with_cache in zip(rounds[0], rounds[size])
        )

    default_size = NODE_CACHE_CONFIGS[-1]
    cache_stats = setups[default_size]["store"].cache_stats.to_dict()
    return {
        "workload": {
            "steps": STEPS,
            "queries_per_batch": QUERIES,
            "rounds": ROUNDS,
            "page_size": PAGE_SIZE,
            "seed": 101,
        },
        "configs": {
            str(size): {
                "build_seconds": setups[size]["build_seconds"],
                "batch_seconds_best": min(rounds[size]),
                "batch_seconds_median": statistics.median(rounds[size]),
            }
            for size in NODE_CACHE_CONFIGS
        },
        "warm_read_speedup": median_speedup(default_size),
        "warm_read_speedup_small_cache": median_speedup(8),
        "node_cache_stats": cache_stats,
        "speedup_floor": SPEEDUP_FLOOR,
    }


def build_server(cached: bool) -> DatabaseServer:
    server = DatabaseServer(
        statement_cache_size=64 if cached else 0,
        node_cache_size=128 if cached else 0,
    )
    server.create_sbspace("spc")
    register_grtree_blade(server, handle_cache=cached)
    server.prefer_virtual_index = True
    server.obs.disable()  # measure the caches, not the instrumentation
    server.execute("CREATE TABLE e (n LVARCHAR, te GRT_TimeExtent_t)")
    server.execute("CREATE INDEX gi ON e(te) USING grtree_am IN spc")
    server.clock.set_text("01/01/98")
    for i in range(50):
        server.execute(f"INSERT INTO e VALUES ('r{i}', {EXTENT})")
    return server


def statement_batch(server) -> float:
    sql = f"SELECT n FROM e WHERE Overlaps(te, {EXTENT})"
    start = time.perf_counter()
    for _ in range(SQL_STATEMENTS):
        rows = server.execute(sql)
    elapsed = time.perf_counter() - start
    assert len(rows) == 50
    return elapsed


def measure_server_layer() -> dict:
    """Repeated identical SELECTs: all server caches on vs all off."""
    servers = {"cached": build_server(True), "uncached": build_server(False)}
    ratios = []
    times = {name: [] for name in servers}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for server in servers.values():
            statement_batch(server)  # warm-up, untimed
        for round_no in range(SQL_ROUNDS):
            order = ["cached", "uncached"]
            if round_no % 2:
                order.reverse()
            round_times = {}
            for name in order:
                round_times[name] = statement_batch(servers[name])
            for name, elapsed in round_times.items():
                times[name].append(elapsed)
            ratios.append(round_times["uncached"] / round_times["cached"])
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "statements_per_batch": SQL_STATEMENTS,
        "rounds": SQL_ROUNDS,
        "batch_seconds_cached_best": min(times["cached"]),
        "batch_seconds_uncached_best": min(times["uncached"]),
        "statement_speedup": statistics.median(ratios),
    }


def test_read_path_speedups(write_artifact):
    tree_results = measure_tree_layer()
    server_results = measure_server_layer()
    payload = {
        "benchmark": "read_path",
        "tree_layer": tree_results,
        "server_layer": server_results,
    }
    write_artifact(
        "BENCH_read_path.json", json.dumps(payload, indent=2, sort_keys=True)
    )
    speedup = tree_results["warm_read_speedup"]
    stmt_speedup = server_results["statement_speedup"]
    write_artifact(
        "perf_read_path.txt",
        "Perf read-path: three cache layers, median of "
        f"{ROUNDS} interleaved rounds\n"
        f"  warm-read speedup (node cache 128 vs off): {speedup:.2f}x "
        f"(floor {SPEEDUP_FLOOR}x)\n"
        "  warm-read speedup (node cache 8 vs off):   "
        f"{tree_results['warm_read_speedup_small_cache']:.2f}x\n"
        f"  statement speedup (all server caches):     {stmt_speedup:.2f}x\n"
        f"  node cache stats: {tree_results['node_cache_stats']}\n",
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm-read speedup {speedup:.2f}x is below the "
        f"{SPEEDUP_FLOOR}x floor"
    )
    # The server-side caches must at least not slow statements down.
    assert stmt_speedup > 0.95
