"""Table 1: the EmpDep relation, rebuilt through the full SQL stack.

Regenerates the six-tuple 4TS table at current time 9/97 and benchmarks
the replay of the complete history (inserts, a deletion, a modification)
through server + DataBlade.
"""

from repro.core import BitemporalDatabase
from repro.temporal.chronon import Granularity, parse_chronon

PAPER_TABLE1 = {
    ("John", "Advertising", "4/1997", "UC", "3/1997", "5/1997"),
    ("Tom", "Management", "3/1997", "7/1997", "6/1997", "8/1997"),
    ("Jane", "Sales", "5/1997", "UC", "5/1997", "NOW"),
    ("Julie", "Sales", "3/1997", "7/1997", "3/1997", "NOW"),
    ("Julie", "Sales", "8/1997", "UC", "3/1997", "7/1997"),
    ("Michelle", "Management", "5/1997", "UC", "3/1997", "NOW"),
}


def month(text):
    return parse_chronon(text, Granularity.MONTH)


def replay():
    db = BitemporalDatabase(["employee", "department"],
                            granularity=Granularity.MONTH)
    db.clock.set(month("3/97"))
    db.insert({"employee": "Tom", "department": "Management"},
              vt_begin=month("6/97"), vt_end=month("8/97"))
    db.insert({"employee": "Julie", "department": "Sales"},
              vt_begin=month("3/97"))
    db.clock.set(month("4/97"))
    db.insert({"employee": "John", "department": "Advertising"},
              vt_begin=month("3/97"), vt_end=month("5/97"))
    db.clock.set(month("5/97"))
    db.insert({"employee": "Jane", "department": "Sales"},
              vt_begin=month("5/97"))
    db.insert({"employee": "Michelle", "department": "Management"},
              vt_begin=month("3/97"))
    db.clock.set(month("8/97"))
    db.delete_where("employee", "Tom")
    db.modify("employee", "Julie",
              {"employee": "Julie", "department": "Sales"},
              vt_begin=month("3/97"), vt_end=month("7/97"))
    db.clock.set(month("9/97"))
    return db


def render(db):
    rows = db.sql(f"SELECT * FROM {db.TABLE}")
    rendered = set()
    lines = ["Employee  Department   TTbegin  TTend   VTbegin  VTend"]
    for row in rows:
        ext = row["time_extent"]
        parts = ext.to_text(Granularity.MONTH).split(", ")
        rendered.add((row["employee"], row["department"], *parts))
        lines.append(
            f"{row['employee']:9s} {row['department']:12s} "
            f"{parts[0]:8s} {parts[1]:7s} {parts[2]:8s} {parts[3]}"
        )
    return rendered, "\n".join(lines)


def test_table1_empdep(benchmark, write_artifact):
    db = benchmark.pedantic(replay, rounds=3, iterations=1)
    rendered, text = render(db)
    write_artifact("table1_empdep.txt", text + "\n")
    assert rendered == PAPER_TABLE1
    assert db.clock.format() == "9/1997"
    assert "consistent" in db.check_index()
