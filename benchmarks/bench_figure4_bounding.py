"""Figure 4: minimum bounding rectangle vs stair shape vs hidden stair.

Reconstructs the figure's three situations from entry sets, asserts the
bounding rules (stair when nothing crosses the diagonal; rectangle
otherwise; Hidden flag when a growing stair hides under a taller fixed
top), quantifies the dead-space advantage of stair bounding, and
benchmarks the bound computation.
"""

from repro.grtree.entries import GREntry, bound_entries
from repro.temporal.regions import union_area
from repro.temporal.variables import NOW, UC

NOW_T = 100


def node_a():
    """Figure 4(a): a stair plus a rectangle above the diagonal -->
    minimum bounding rectangle (growing in both dimensions)."""
    return [
        GREntry(60, UC, 60, NOW),            # growing stair
        GREntry(70, UC, 90, 95),             # rect above the diagonal
    ]


def node_b():
    """Figure 4(b): nothing extends above vt = tt --> stair bound."""
    return [
        GREntry(60, UC, 60, NOW),            # growing stair
        GREntry(70, 90, 20, 60),             # rect under the diagonal
        GREntry(50, 80, 30, NOW),            # stopped stair
    ]


def node_c():
    """Figure 4(c): a small growing stair hidden under a taller fixed
    rectangle --> fixed top + Hidden flag."""
    return [
        GREntry(80, UC, 80, NOW),            # small growing stair
        GREntry(60, UC, 100, 160),           # tall fixed-top rectangle
    ]


def test_figure4_bounding(benchmark, write_artifact):
    bounds = benchmark(
        lambda: {
            "a": bound_entries(node_a(), NOW_T),
            "b": bound_entries(node_b(), NOW_T),
            "c": bound_entries(node_c(), NOW_T),
        }
    )

    # (a) rectangle growing in both dimensions.
    assert bounds["a"].rectangle
    assert bounds["a"].vt_end is NOW and bounds["a"].tt_end is UC
    # (b) stair-shaped bound.
    assert not bounds["b"].rectangle and bounds["b"].vt_end is NOW
    # (c) hidden stair: fixed top above the clock, Hidden set.
    assert bounds["c"].rectangle and bounds["c"].hidden
    assert bounds["c"].vt_end == 160

    # Containment holds now and long after -- including after the hidden
    # stair outgrows its rectangle (the adjustment algorithm).
    for key, entries in (("a", node_a()), ("b", node_b()), ("c", node_c())):
        for t in (NOW_T, 140, 160, 161, 400):
            region = bounds[key].region(t)
            for entry in entries:
                assert region.contains(entry.region(t)), (key, t)

    # Dead space: the stair bound of (b) is tighter than the rectangle
    # bound the R*-tree would be forced to use.
    regions_b = [e.region(NOW_T) for e in node_b()]
    stair_bound = bounds["b"].region(NOW_T)
    rect_bound = stair_bound.bounding_rectangle()
    covered = union_area(regions_b)
    stair_dead = stair_bound.area() - covered
    rect_dead = rect_bound.area() - covered
    assert stair_dead < rect_dead

    lines = [
        "Figure 4 reproduction (current time = 100)",
        f"(a) {bounds['a']} -> {bounds['a'].region(NOW_T)}",
        f"(b) {bounds['b']} -> {bounds['b'].region(NOW_T)}",
        f"(c) {bounds['c']} -> {bounds['c'].region(NOW_T)}",
        "",
        f"(b) dead space: stair bound {stair_dead} vs rectangle bound "
        f"{rect_dead} ({100 * (1 - stair_dead / rect_dead):.0f}% less)",
        f"(c) at t=170 the hidden stair has outgrown the fixed top 160;",
        f"    adjusted bound region: {bounds['c'].region(170)}",
    ]
    write_artifact("figure4_bounding.txt", "\n".join(lines) + "\n")
