"""Figure 5: GR-tree structure -- UC/NOW at all levels, growing bounds.

Builds a small GR-tree whose root must contain both a growing
stair-shaped bound and rectangle bounds (the figure's layout), dumps the
structure, asserts the variables really appear in non-leaf entries, and
benchmarks the structure dump plus an integrity check.
"""

from repro.grtree.node import GRNodeStore
from repro.grtree.tree import GRTree
from repro.storage.buffer import BufferPool
from repro.storage.pages import InMemoryPageStore
from repro.temporal.chronon import Clock
from repro.temporal.extent import TimeExtent
from repro.temporal.variables import NOW, UC, is_ground


def build_tree():
    clock = Clock(now=100)
    store = GRNodeStore(BufferPool(InMemoryPageStore(page_size=512)))
    tree = GRTree.create(store, clock)
    rowid = 0
    # A population that forces internal nodes with stair and rectangle
    # bounds: growing stairs plus fixed rectangles above the diagonal.
    for i in range(120):
        tree.insert(TimeExtent(clock.now, UC, clock.now - (i % 17), NOW), rowid)
        rowid += 1
        vtb = clock.now + 5 + (i % 11)
        tree.insert(TimeExtent(clock.now, UC, vtb, vtb + 7), rowid)
        rowid += 1
        if i % 6 == 0:
            clock.advance(1)
    return tree, clock


def test_figure5_structure(benchmark, write_artifact):
    tree, clock = build_tree()

    def dump_and_check():
        tree.check()
        return tree.dump()

    dump = benchmark.pedantic(dump_and_check, rounds=3, iterations=1)

    assert tree.height >= 2  # there *are* internal nodes

    internal_entries = [
        entry
        for node in tree.iter_nodes()
        if not node.leaf
        for entry in node.entries
    ]
    # "Variables UC and NOW were introduced in node entries at all tree
    # levels": growing bounds exist in internal nodes.
    assert any(e.tt_end is UC for e in internal_entries)
    assert any(e.vt_end is NOW for e in internal_entries)
    # Both bound shapes occur, and the Rectangle flag disambiguates.
    assert any(e.vt_end is NOW and not e.rectangle for e in internal_entries)
    assert any(e.rectangle for e in internal_entries)

    # Growth without writes: bounds expand with the clock alone.
    growing = next(e for e in internal_entries if e.tt_end is UC)
    before = growing.region(clock.now).area()
    after = growing.region(clock.now + 50).area()
    assert after > before

    header = [
        f"Figure 5 reproduction: GR-tree at time {clock.now}",
        f"height={tree.height} nodes={tree.node_count()} size={tree.size}",
        f"internal entries: {len(internal_entries)} "
        f"({sum(e.tt_end is UC for e in internal_entries)} growing, "
        f"{sum(e.vt_end is NOW and not e.rectangle for e in internal_entries)}"
        f" stair bounds, {sum(e.hidden for e in internal_entries)} hidden)",
        "",
    ]
    write_artifact("figure5_structure.txt", "\n".join(header) + dump + "\n")
