"""Perf replication: read replicas must turn into read throughput.

A primary and two read replicas run as *separate processes* (spawned
through ``python -m repro.cli serve`` / ``serve --replica-of``), so each
engine owns a whole interpreter -- this is the one benchmark where the
GIL workaround is the deployment itself.  Every server runs with
``--simulated-io-ms``: a small storage latency slept under the engine
lock, standing in for the disk reads a purely in-memory engine never
waits on.  That makes each engine's *serialization* the capacity limit
(one statement at a time, latency-dominated), which is exactly the
resource read replicas multiply -- and keeps the result meaningful even
on a single-core host, where raw-CPU scan scaling is physically capped
at 1x.  Closed-loop reader threads drive a predicate-seqscan workload
twice: once against the primary alone, once through a
:class:`~repro.repl.RoutedClient` that fans reads out across the
replicas.  The gates:

* **scaling**: routed aggregate read throughput is at least
  ``SCALING_FLOOR`` (1.8x) the primary-only throughput;
* **zero lost updates**: every journal row written through the router
  lands exactly once on the primary *and* on every replica;
* **zero stale reads beyond the bound**: with the session's write token
  (``min_lsn``) attached, no routed read ever misses the session's own
  committed write, replica lag or not.

Machine-readable results land in ``benchmarks/out/BENCH_replication.json``
(a CI artifact; the gates fail this test, and therefore CI, on
regression).
"""

import os
import pathlib
import socket
import subprocess
import sys
import threading
import time
from collections import Counter

from repro.net import protocol
from repro.net.client import RemoteStatementError, ReproClient
from repro.repl import RoutedClient

REPO = pathlib.Path(__file__).resolve().parent.parent
HOST = "127.0.0.1"

ROWS = 200                   # seeded table size: every read seqscans it
SIM_IO_MS = 5.0              # per-statement storage latency, every server
READERS = 8                  # closed-loop reader threads per phase
READS_PER_READER = 50
WRITERS = 4                  # journal writers for the lost-update oracle
WRITES_PER_WRITER = 30
RYW_ROUNDS = 25              # insert+read rounds for the staleness gate
SCALING_FLOOR = 1.8          # routed vs primary-only, the CI gate
BOOT_TIMEOUT = 30.0
CATCHUP_TIMEOUT = 60.0


def free_port():
    with socket.socket() as probe:
        probe.bind((HOST, 0))
        return probe.getsockname()[1]


def spawn_server(port, *extra):
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--host", HOST, "--port", str(port), "--workers", "4",
         "--simulated-io-ms", str(SIM_IO_MS), *extra],
        env=env,
        cwd=str(REPO),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def wait_for_server(proc, port):
    deadline = time.monotonic() + BOOT_TIMEOUT
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"server on port {port} died at boot")
        try:
            ReproClient(HOST, port, read_timeout=5.0).connect().close()
            return
        except OSError:
            time.sleep(0.05)
    raise RuntimeError(f"server on port {port} never came up")


def wait_for_catchup(port, token, probe_sql="SELECT * FROM t WHERE id = 0"):
    """Poll the replica with the write token until it stops saying
    REPLICA_STALE -- i.e. until it has applied everything we wrote."""
    deadline = time.monotonic() + CATCHUP_TIMEOUT
    with ReproClient(HOST, port, read_timeout=10.0) as client:
        while time.monotonic() < deadline:
            try:
                client.execute(probe_sql, min_lsn=token)
                return
            except RemoteStatementError as exc:
                if exc.code != protocol.REPLICA_STALE:
                    raise
                time.sleep(0.05)
    raise RuntimeError(f"replica on port {port} never caught up to {token}")


def run_reader(make_client, reader_id, latencies, failures):
    """One closed-loop reader: a predicate seqscan per op, no think
    time -- demand must exceed a single engine's capacity for replica
    scaling to be visible."""
    try:
        client = make_client()
        try:
            for i in range(READS_PER_READER):
                key = (reader_id * 37 + i * 13) % ROWS
                start = time.perf_counter()
                rows = client.execute(f"SELECT * FROM t WHERE id = {key}")
                latencies.append(time.perf_counter() - start)
                assert len(rows) == 1 and rows[0]["val"] == key * 3
        finally:
            client.close()
    except Exception as exc:  # pragma: no cover
        failures.append((reader_id, exc))


def drive_readers(label, make_client, collect_stats=None):
    latencies = []
    failures = []
    clients = []

    def factory_with_stats():
        client = make_client()
        clients.append(client)
        return client

    threads = [
        threading.Thread(
            target=run_reader,
            args=(factory_with_stats, reader, latencies, failures),
        )
        for reader in range(READERS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    wall = time.perf_counter() - start
    assert not any(t.is_alive() for t in threads), f"{label} run hung"
    assert failures == [], f"{label} readers failed: {failures!r}"
    if collect_stats is not None:
        collect_stats(clients)
    ordered = sorted(latencies)
    ops = READERS * READS_PER_READER
    return {
        "ops": ops,
        "wall_seconds": wall,
        "throughput_reads_per_s": ops / wall,
        "latency_p50_ms": 1000 * ordered[len(ordered) // 2],
        "latency_p99_ms": 1000 * ordered[min(
            len(ordered) - 1, int(len(ordered) * 0.99)
        )],
    }


def verify_no_lost_updates(primary_port, replica_ports, token):
    """Every (writer, seq) journal row landed exactly once -- on the
    primary and, once caught up to the write token, on every replica."""
    expected = {
        (writer, seq)
        for writer in range(WRITERS)
        for seq in range(WRITES_PER_WRITER)
    }
    for port in [primary_port, *replica_ports]:
        with ReproClient(HOST, port, read_timeout=10.0) as client:
            rows = client.execute("SELECT * FROM journal", min_lsn=token)
        multiplicity = Counter((row["k"], row["seq"]) for row in rows)
        assert set(multiplicity) == expected, (
            f"journal on port {port} disagrees with the writes issued"
        )
        dupes = {key: n for key, n in multiplicity.items() if n != 1}
        assert not dupes, f"port {port} saw duplicated journal rows: {dupes}"


def test_replication_read_scaling(write_artifact, append_bench):
    primary_port = free_port()
    primary = spawn_server(primary_port)
    procs = [primary]
    try:
        wait_for_server(primary, primary_port)

        # --- seed through the wire; the replicas replay all of it ---
        with ReproClient(HOST, primary_port, read_timeout=10.0) as seed:
            seed.execute("CREATE TABLE t (id INTEGER, val INTEGER)")
            seed.execute("CREATE TABLE journal (k INTEGER, seq INTEGER)")
            for i in range(ROWS):
                seed.execute(f"INSERT INTO t VALUES ({i}, {i * 3})")
            seed_token = seed.last_lsn
        assert seed_token is not None, (
            "the primary must stamp result frames with its WAL position"
        )

        replica_ports = []
        for i in range(2):
            port = free_port()
            proc = spawn_server(
                port,
                "--replica-of", f"{HOST}:{primary_port}",
                "--replica-name", f"bench-r{i}",
            )
            procs.append(proc)
            replica_ports.append(port)
        for port in replica_ports:
            wait_for_server(procs[1 + replica_ports.index(port)], port)
            wait_for_catchup(port, seed_token)

        # --- phase 1: primary-only baseline -------------------------
        baseline = drive_readers(
            "primary-only",
            lambda: ReproClient(HOST, primary_port, read_timeout=30.0)
            .connect(),
        )

        # --- phase 2: routed across two replicas --------------------
        routed_stats = Counter()

        def collect(clients):
            for client in clients:
                routed_stats.update(client.stats)

        routed = drive_readers(
            "routed",
            lambda: RoutedClient(
                (HOST, primary_port),
                [(HOST, port) for port in replica_ports],
                read_timeout=30.0,
            ).connect(),
            collect_stats=collect,
        )
        total_reads = READERS * READS_PER_READER
        assert routed_stats["replica_statements"] >= 0.9 * total_reads, (
            "routed reads were not actually served by the replicas: "
            f"{dict(routed_stats)}"
        )

        # --- phase 3: zero lost updates -----------------------------
        write_failures = []

        def run_writer(writer):
            try:
                with RoutedClient(
                    (HOST, primary_port),
                    [(HOST, port) for port in replica_ports],
                    read_timeout=30.0,
                ).connect() as client:
                    for seq in range(WRITES_PER_WRITER):
                        client.execute(
                            f"INSERT INTO journal VALUES ({writer}, {seq})"
                        )
            except Exception as exc:  # pragma: no cover
                write_failures.append((writer, exc))

        writers = [
            threading.Thread(target=run_writer, args=(w,))
            for w in range(WRITERS)
        ]
        for thread in writers:
            thread.start()
        for thread in writers:
            thread.join(timeout=300)
        assert write_failures == [], f"writers failed: {write_failures!r}"
        with ReproClient(HOST, primary_port, read_timeout=10.0) as check:
            check.execute("SELECT * FROM journal")
            journal_token = check.last_lsn
        verify_no_lost_updates(primary_port, replica_ports, journal_token)

        # --- phase 4: no stale read beyond the bound ----------------
        ryw = RoutedClient(
            (HOST, primary_port),
            [(HOST, port) for port in replica_ports],
            read_timeout=30.0,
        ).connect()
        try:
            ryw.execute("CREATE TABLE marks (id INTEGER)")
            for i in range(RYW_ROUNDS):
                ryw.execute(f"INSERT INTO marks VALUES ({i})")
                rows = ryw.execute("SELECT * FROM marks")
                assert len(rows) == i + 1, (
                    f"round {i}: a routed read missed its own committed "
                    f"write -- {len(rows)} rows visible, wanted {i + 1}"
                )
            ryw_replica_reads = ryw.stats["replica_statements"]
        finally:
            ryw.close()

        speedup = (
            routed["throughput_reads_per_s"]
            / baseline["throughput_reads_per_s"]
        )
        payload = {
            "benchmark": "replication",
            "rows": ROWS,
            "simulated_io_ms": SIM_IO_MS,
            "readers": READERS,
            "reads_per_reader": READS_PER_READER,
            "primary_only": baseline,
            "routed_2_replicas": routed,
            "speedup_routed_vs_primary": speedup,
            "scaling_floor": SCALING_FLOOR,
            "routed_client_stats": dict(routed_stats),
            "lost_updates": 0,
            "read_your_writes_rounds": RYW_ROUNDS,
            "read_your_writes_replica_reads": ryw_replica_reads,
        }
        append_bench("BENCH_replication.json", payload)
        lines = [
            "Perf replication: routed read fan-out vs primary-only",
            f"  primary only : "
            f"{baseline['throughput_reads_per_s']:8.1f} reads/s   "
            f"p50 {baseline['latency_p50_ms']:6.2f} ms   "
            f"p99 {baseline['latency_p99_ms']:6.2f} ms",
            f"  2 replicas   : "
            f"{routed['throughput_reads_per_s']:8.1f} reads/s   "
            f"p50 {routed['latency_p50_ms']:6.2f} ms   "
            f"p99 {routed['latency_p99_ms']:6.2f} ms",
            f"  speedup: {speedup:.2f}x (floor {SCALING_FLOOR}x)",
            f"  lost updates: 0 of "
            f"{WRITERS * WRITES_PER_WRITER} journal rows, on the primary "
            f"and both replicas",
            f"  stale reads beyond the bound: 0 in {RYW_ROUNDS} "
            f"insert+read rounds ({ryw_replica_reads} served by replicas)",
        ]
        write_artifact("perf_replication.txt", "\n".join(lines) + "\n")
        assert speedup >= SCALING_FLOOR, (
            f"2-replica read scaling {speedup:.2f}x is below the "
            f"{SCALING_FLOOR}x floor"
        )
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait(timeout=10)
