"""Figure 7: one access method, several operator classes -- and the cost
of extensibility.

Reconstructs the figure's association (an AM with multiple opclasses,
including an extension adding a new strategy function), then measures
the paper's stated trade-off: hard-coded strategy dispatch versus
dynamic resolution of strategy UDRs per index entry (Section 5.2).
"""

import random

import pytest

from repro.rblade import register_rtree_blade
from repro.rblade.blade import box_output
from repro.rtree.geometry import Rect
from repro.server import DatabaseServer


@pytest.fixture()
def server():
    server = DatabaseServer()
    server.create_sbspace("spc")
    register_rtree_blade(server)
    server.execute("CREATE TABLE shapes (label LVARCHAR, geom Box)")
    server.execute("CREATE INDEX rti ON shapes(geom) USING rtree_am IN spc")
    server.prefer_virtual_index = True
    rng = random.Random(77)
    for i in range(400):
        x, y = rng.uniform(0, 500), rng.uniform(0, 500)
        rect = Rect((x, y), (x + rng.uniform(1, 6), y + rng.uniform(1, 6)))
        server.execute(
            f"INSERT INTO shapes VALUES ('s{i}', '{box_output(rect)}')"
        )
    return server


def blade_of(server):
    return server.catalog.routines.resolve_any("rt_getnext").fn.__self__


def test_figure7_multiple_opclasses(server, benchmark, write_artifact):
    """An AM can have several opclasses; extensions add strategies."""
    # A second operator class for the same AM: the paper's example adds
    # a Neighbour() strategy to the R-tree (close but not overlapping).
    server.library.register(
        "usr/functions/rtree.bld",
        "rt_neighbour_udr",
        lambda a, b: not a.intersects(b) and a.distance_to_center(b) < 400,
    )
    server.execute(
        "CREATE FUNCTION Neighbour(Box, Box) RETURNING boolean "
        "EXTERNAL NAME 'usr/functions/rtree.bld(rt_neighbour_udr)' LANGUAGE c"
    )
    server.execute(
        "CREATE OPCLASS rtree_extended FOR rtree_am "
        "STRATEGIES(Overlap, Equal, Contains, Within, Neighbour) "
        "SUPPORT(RT_Union, RT_Size, RT_Inter)"
    )
    opclasses = benchmark(
        server.catalog.opclasses.for_access_method, "rtree_am"
    )
    assert {oc.name for oc in opclasses} == {"rtree_ops", "rtree_extended"}
    extended = server.catalog.opclasses.get("rtree_extended")
    assert extended.is_strategy("Neighbour")
    # The default opclass is unchanged.
    am = server.catalog.access_methods.get("rtree_am")
    assert am.default_opclass == "rtree_ops"

    lines = [
        "Figure 7 reproduction: access method <-> operator classes",
        f"  access method: rtree_am",
    ]
    for oc in opclasses:
        lines.append(
            f"  opclass {oc.name}: strategies={list(oc.strategies)}"
        )
    write_artifact("figure7_opclasses.txt", "\n".join(lines) + "\n")


@pytest.mark.parametrize("dynamic", [False, True], ids=["hardcoded", "dynamic"])
def test_figure7_dispatch_cost(server, benchmark, dynamic, write_artifact):
    """The 'cost of this extensibility is the overhead of dynamic
    resolution and execution of strategy and support functions'."""
    blade = blade_of(server)
    blade.dynamic_dispatch = dynamic
    query = "SELECT label FROM shapes WHERE Overlap(geom, '(0, 0, 400, 400)')"

    before = server.catalog.routines.resolutions
    rows = benchmark(server.execute, query)
    assert len(rows) > 100

    resolutions = server.catalog.routines.resolutions - before
    mode = "dynamic" if dynamic else "hardcoded"
    write_artifact(
        f"figure7_dispatch_{mode}.txt",
        f"dispatch={mode}: rows={len(rows)}, "
        f"UDR resolutions during the last measured run={resolutions}\n",
    )
