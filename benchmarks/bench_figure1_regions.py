"""Figure 1: the six bitemporal region shapes, rasterized and classified.

Regenerates an ASCII rendering of each case's region at CT = 9/97 (the
figure's setting), asserts the qualitative shape (growing vs static,
stair vs rectangle, high first step), and benchmarks region resolution.
"""

from repro.temporal.chronon import Granularity, parse_chronon
from repro.temporal.extent import Case, TimeExtent
from repro.temporal.variables import NOW, UC


def month(text):
    return parse_chronon(text, Granularity.MONTH)


def empdep_cases():
    """The Figure 1 regions come from the Table 1 tuples."""
    return {
        1: TimeExtent(month("4/97"), UC, month("3/97"), month("5/97")),   # John
        2: TimeExtent(month("3/97"), month("7/97"), month("6/97"), month("8/97")),  # Tom
        3: TimeExtent(month("5/97"), UC, month("5/97"), NOW),             # Jane
        4: TimeExtent(month("3/97"), month("7/97"), month("3/97"), NOW),  # old Julie
        5: TimeExtent(month("5/97"), UC, month("3/97"), NOW),             # Michelle
        6: TimeExtent(month("4/97"), month("7/97"), month("2/97"), NOW),
    }


def rasterize(region, t_range, v_range):
    lines = []
    for v in reversed(range(*v_range)):
        line = "".join(
            "#" if region.contains_point(t, v) else "."
            for t in range(*t_range)
        )
        lines.append(line)
    return "\n".join(lines)


def test_figure1_regions(benchmark, write_artifact):
    extents = empdep_cases()
    now = month("9/97")

    def resolve_all():
        return {case: ext.region(now) for case, ext in extents.items()}

    regions = benchmark(resolve_all)

    # Case classification matches Figure 2's annotations.
    assert extents[1].case is Case.GROWING_RECTANGLE
    assert extents[2].case is Case.STATIC_RECTANGLE
    assert extents[3].case is Case.GROWING_STAIR
    assert extents[4].case is Case.STATIC_STAIR
    assert extents[5].case is Case.GROWING_STAIR_HIGH_STEP
    assert extents[6].case is Case.STATIC_STAIR_HIGH_STEP

    # Shape assertions, per the figure.
    assert not regions[1].stair and regions[1].tt_hi == now   # grows in tt
    assert not regions[2].stair and regions[2].tt_hi < now    # static
    assert regions[3].stair and regions[3].tt_hi == now       # grows in both
    assert regions[4].stair and regions[4].tt_hi < now        # stopped stair
    assert regions[5].stair
    # The high first step: valid time already covers [vt1, tt1] at birth.
    assert regions[5].vt_lo < extents[5].tt_begin
    assert regions[6].stair and regions[6].tt_hi < now

    # Growth: the growing cases strictly expand with the clock.
    later = now + 6
    for case in (1, 3, 5):
        assert extents[case].region(later).area() > regions[case].area()
    for case in (2, 4, 6):
        assert extents[case].region(later) == regions[case]

    t_range = (month("1/97"), month("12/97"))
    v_range = (month("1/97"), month("12/97"))
    blocks = []
    for case in sorted(regions):
        blocks.append(f"Case {case} ({extents[case].case.name}):")
        blocks.append(rasterize(regions[case], t_range, v_range))
        blocks.append("")
    write_artifact("figure1_regions.txt", "\n".join(blocks))
