"""Perf-1: query I/O -- GR-tree vs max-timestamp R*-tree vs seqscan.

The headline series of the GR-tree evaluation: average page accesses per
bitemporal window query as the fraction of now-relative data varies.
Expected shape: the GR-tree wins overall; its advantage over the
max-timestamp R*-tree grows with the now-relative fraction (growing
rectangles stretched to the end of time overlap everything), and both
indices beat the sequential scan.
"""

import pytest

from _perf import build_setup, measure_query_io, standard_queries

STEPS = 1500
FRACTIONS = [0.0, 0.3, 0.7, 1.0]


@pytest.fixture(scope="module")
def series():
    rows = {}
    for fraction in FRACTIONS:
        setup = build_setup(STEPS, now_relative_fraction=fraction)
        queries = standard_queries(setup, count=20)
        rows[fraction] = (setup, queries, measure_query_io(setup, queries))
    return rows


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_perf1_query_io(series, benchmark, fraction, write_artifact):
    setup, queries, io = series[fraction]

    # Benchmark the GR-tree query path itself (wall clock, on top of the
    # I/O accounting already captured in `io`).
    def run_queries():
        for query in queries:
            setup.grtree.search_all(query)

    benchmark.pedantic(run_queries, rounds=3, iterations=1)

    # Shape assertions: who wins, and by how much.  On purely ground
    # data the two trees index identical geometry and should be within a
    # constant of each other (the GR-tree's closed integer chronon
    # intervals are slightly "fatter" than the baseline's float rects).
    assert io["grtree"] < io["seqscan"], io
    assert io["grtree"] <= io["rstar_max"] * 1.5, io
    if fraction >= 0.7:
        # On heavily now-relative data the GR-tree must win clearly.
        assert io["grtree"] < 0.8 * io["rstar_max"], io

    lines = [
        f"Perf-1 (now-relative fraction = {fraction}):",
        f"  dataset           : {len(setup.workload.all_extents())} entries",
        f"  avg I/O per query : GR-tree {io['grtree']:8.1f}",
        f"                      R*-max  {io['rstar_max']:8.1f}",
        f"                      seqscan {io['seqscan']:8.1f}",
        f"  GR-tree / R*-max  : {io['grtree'] / max(io['rstar_max'], 1e-9):.2f}",
    ]
    write_artifact(f"perf1_query_io_{fraction}.txt", "\n".join(lines) + "\n")


def test_perf1_advantage_grows_with_now_relative_fraction(series, benchmark,
                                                          write_artifact):
    ratios = {}
    for fraction, (setup, queries, io) in series.items():
        ratios[fraction] = io["grtree"] / max(io["rstar_max"], 1e-9)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # Crossover shape: the ratio at full now-relative data is clearly
    # better than on purely ground data.
    assert ratios[1.0] < ratios[0.0] + 0.05
    assert ratios[1.0] < 0.85

    lines = ["Perf-1 summary: GR-tree I/O as a fraction of R*-max I/O"]
    for fraction in sorted(ratios):
        lines.append(f"  now-relative={fraction:.1f}: {ratios[fraction]:.2f}")
    write_artifact("perf1_summary.txt", "\n".join(lines) + "\n")
